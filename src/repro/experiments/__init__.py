"""Experiment definitions (E1–E10).

Each module reproduces one quantitative claim of the paper and exposes a
single entry point::

    run(quick: bool = True) -> repro.metrics.reporting.ExperimentReport

``quick=True`` uses reduced network sizes / trial counts so the whole suite
runs in a couple of minutes (this is what the pytest benchmarks and the test
suite use); ``quick=False`` uses the full sweep recorded in EXPERIMENTS.md.

The experiment ids, the claims they reproduce, the workloads and the module
mapping are catalogued in DESIGN.md ("Experiment index"); EXPERIMENTS.md
records paper-claim versus measured outcome for each of them.
"""

from repro.experiments import (
    e1_round_complexity,
    e2_common_coin,
    e3_early_termination,
    e4_message_complexity,
    e5_crossover,
    e6_resilience,
    e7_lower_bound_gap,
    e8_las_vegas,
    e9_baselines,
    e10_ablation_alpha,
)

ALL_EXPERIMENTS = {
    "E1": e1_round_complexity.run,
    "E2": e2_common_coin.run,
    "E3": e3_early_termination.run,
    "E4": e4_message_complexity.run,
    "E5": e5_crossover.run,
    "E6": e6_resilience.run,
    "E7": e7_lower_bound_gap.run,
    "E8": e8_las_vegas.run,
    "E9": e9_baselines.run,
    "E10": e10_ablation_alpha.run,
}

__all__ = ["ALL_EXPERIMENTS"]
