"""Batched NumPy kernels for the baseline protocols.

PR 1 gave the paper's committee-BA family a batched multi-trial engine
(:mod:`repro.simulator.vectorized`); this package extends the same treatment
to the rest of the baseline landscape so the E9 comparison can run at
thousand-node scale.  Each kernel executes a whole sweep of trials on
``(B, n)`` boolean planes and reports the committee engine's result shapes;
the Rabin and Ben-Or kernels run on the shared hook-driven
:class:`repro.simulator.phase_engine.PhaseEngine`, and every kernel consumes
the same :mod:`repro.adversary.kernels` plane kernels the committee engine
uses instead of a private behaviour switch.

:data:`BASELINE_KERNELS` is the capability registry :mod:`repro.engine`
merges with the committee engine's entries.  Which object-simulator
adversaries each kernel serves is **derived** from the kernel's declared hook
surface and the adversary kernels' capability profiles
(:mod:`repro.adversary.kernels.capabilities`), not hand-listed: a strategy
whose requirements fit the hooks is supported (fast path), a strategy with no
lever on the protocol is *inapplicable* (dispatched to the exact
failure-free behaviour, mirroring its provably no-op object implementation),
and anything else stays on the object path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.adversary.kernels.capabilities import (
    derive_behaviours,
    inapplicable_adversaries,
)
from repro.baselines.kernels.ben_or import run_ben_or_trials
from repro.baselines.kernels.coin import CoinTrialsResult, run_coin_trials
from repro.baselines.kernels.common import VectorizedAggregate
from repro.baselines.kernels.eig import EIG_HOOKS, run_eig_trials
from repro.baselines.kernels.phase_king import PHASE_KING_HOOKS, run_phase_king_trials
from repro.baselines.kernels.phase_skeleton import SKELETON_HOOKS
from repro.baselines.kernels.rabin import run_rabin_trials
from repro.baselines.kernels.sampling_majority import (
    SAMPLING_HOOKS,
    run_sampling_majority_trials,
)


@dataclass(frozen=True)
class KernelSpec:
    """Capability record for one protocol's batched kernel.

    Attributes:
        name: Kernel identifier shown in the engine-dispatch table.
        run_trials: Sweep entry point with the
            :func:`repro.simulator.vectorized.run_vectorized_trials`
            signature convention
            (``(n, t, *, adversary, inputs, trials, seed, ...)``).  Every
            kernel also honours ``trial_offset``: trial ``k`` of the call
            uses the Philox key ``(seed, trial_offset + k)``, so contiguous
            sub-batches concatenate bit-identically to one full batch (the
            sharded ``vectorized-mp`` executor's contract).
        hooks: The adversary hook surface the kernel implements (the
            :mod:`repro.adversary.kernels.capabilities` vocabulary), from
            which ``behaviours`` and ``inapplicable`` are derived.
        behaviours: Object-simulator adversary name -> kernel fault
            behaviour.  Only pairs listed here take the vectorised fast path;
            inapplicable strategies map to the exact ``"none"`` behaviour.
        inapplicable: Canonical names of the strategies with *no lever* on
            this protocol (their object implementations provably no-op);
            listed explicitly in the engine tables.
        exact: Adversary names whose kernel runs are bit-identical to the
            object simulator (everything else is statistically validated).
        supports_params: Kernel accepts a committee-geometry override
            (``params=``) and an ``alpha`` kwarg.
        supports_max_rounds: Kernel honours an explicit round cap
            (timed-out trials are reported, not mis-simulated).
        supports_topology: Kernel accepts ``adjacency``/``loss`` kwargs (the
            masked communication planes of :mod:`repro.topology`); protocols
            without it run off-clique configurations on the object path only.
        supports_backend: Kernel accepts a ``backend`` kwarg selecting the
            plane representation (:mod:`repro.simulator.planes`).  True for
            everything on the shared :class:`~repro.simulator.phase_engine.
            PhaseEngine` loop and for phase king (raw boolean planes, but
            its masked per-recipient tallies route through the
            backend-aware channels of :mod:`repro.topology.counting`); the
            closed-form kernels have no plane state to represent.  Backends
            are bit-identical, so the flag never enters sweep-store keys.
        protocol_kwargs: Protocol constructor kwargs the kernel reproduces;
            any other kwarg forces the object path.
    """

    name: str
    run_trials: Callable[..., VectorizedAggregate]
    hooks: frozenset[str]
    behaviours: Mapping[str, str] = field(init=False)
    inapplicable: frozenset[str] = field(init=False)
    exact: frozenset[str] = frozenset()
    supports_params: bool = False
    supports_max_rounds: bool = False
    supports_topology: bool = False
    supports_backend: bool = False
    protocol_kwargs: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        object.__setattr__(self, "behaviours", derive_behaviours(self.hooks))
        object.__setattr__(
            self, "inapplicable", inapplicable_adversaries(self.hooks)
        )


#: protocol name -> baseline kernel capability record.  The committee-family
#: protocols are registered by :mod:`repro.engine` itself (their kernel is
#: the committee engine).  ``exact`` marks the pairs the cross-validation
#: suite holds to bit-identity (deterministic protocols and the replayed
#: dealer stream — including the inapplicable no-op pairs, which are
#: bit-identical wherever the failure-free pair is).
BASELINE_KERNELS: dict[str, KernelSpec] = {
    "rabin": KernelSpec(
        name="dealer-coin",
        run_trials=run_rabin_trials,
        hooks=SKELETON_HOOKS,
        # The dealer stream is replayed exactly and these fault models are
        # deterministic, so they match the object simulator bit for bit; the
        # rushing share attacks depend on the honest share draws and stay
        # statistical.
        exact=frozenset(
            {"null", "none", "silent", "static", "equivocate", "committee-targeting"}
        ),
        supports_topology=True,
        supports_backend=True,
        protocol_kwargs=frozenset({"phases_factor"}),
    ),
    "ben-or": KernelSpec(
        name="private-coin",
        run_trials=run_ben_or_trials,
        hooks=SKELETON_HOOKS,
        supports_max_rounds=True,
        supports_topology=True,
        supports_backend=True,
        protocol_kwargs=frozenset({"phases_factor"}),
    ),
    "phase-king": KernelSpec(
        name="phase-king",
        run_trials=run_phase_king_trials,
        hooks=PHASE_KING_HOOKS,
        supports_topology=True,
        supports_backend=True,
        exact=frozenset(
            {
                "null",
                "none",
                "silent",
                "static",
                "equivocate",
                "committee-targeting",
                "coin-attack",
                "straddle",
                "crash",
            }
        ),
    ),
    "eig": KernelSpec(
        name="eig-tree",
        run_trials=run_eig_trials,
        hooks=EIG_HOOKS,
        exact=frozenset(
            {
                "null",
                "none",
                "silent",
                "static",
                "random-noise",
                "coin-attack",
                "straddle",
                "crash",
                "committee-targeting",
            }
        ),
    ),
    "sampling-majority": KernelSpec(
        name="sampling-majority",
        run_trials=run_sampling_majority_trials,
        hooks=SAMPLING_HOOKS,
        protocol_kwargs=frozenset({"iterations_factor", "sample_size"}),
    ),
}

__all__ = [
    "BASELINE_KERNELS",
    "CoinTrialsResult",
    "KernelSpec",
    "run_ben_or_trials",
    "run_coin_trials",
    "run_eig_trials",
    "run_phase_king_trials",
    "run_rabin_trials",
    "run_sampling_majority_trials",
]
