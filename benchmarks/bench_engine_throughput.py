"""Micro-benchmarks of the two execution engines.

Not tied to a paper claim; these measure the cost of a single protocol
execution in the object-level simulator and in the vectorised engine, which is
what determines how large a sweep the experiment harness can afford.  They use
pytest-benchmark's statistical timing (multiple rounds), unlike the experiment
benchmarks which run their sweep exactly once.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import ProtocolParameters
from repro.core.runner import run_agreement
from repro.simulator.vectorized import VectorizedAgreementSimulator


def test_object_engine_single_run(benchmark):
    """One attacked execution at n=48 in the faithful object-level simulator."""

    def run_once():
        return run_agreement(
            n=48, t=10, protocol="committee-ba-las-vegas", adversary="coin-attack",
            inputs="split", seed=5,
        )

    result = benchmark(run_once)
    assert result.agreement


def test_vectorized_engine_single_run(benchmark):
    """One attacked execution at n=1024 in the vectorised engine."""
    params = ProtocolParameters.derive(1024, 64)
    simulator = VectorizedAgreementSimulator(n=1024, t=64, params=params, adversary="straddle")
    inputs = np.zeros(1024, dtype=np.int8)
    inputs[512:] = 1

    def run_once():
        rng = np.random.Generator(np.random.Philox(key=np.array([11, 0], dtype=np.uint64)))
        return simulator.run(inputs, rng)

    result = benchmark(run_once)
    assert result.agreement


def test_common_coin_single_round(benchmark):
    """One round of the standalone common coin (Algorithm 1) at n=64 under attack."""
    from repro.adversary.strategies.coin_attack import CoinAttackAdversary
    from repro.core.common_coin import run_common_coin

    def run_once():
        return run_common_coin(64, CoinAttackAdversary(4), seed=3)

    outcome = benchmark(run_once)
    assert outcome.outputs
