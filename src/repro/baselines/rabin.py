"""Rabin (1983) — Byzantine agreement with a trusted dealer's shared coin.

Rabin's protocol assumes a shared (common) coin handed to all nodes by a
trusted external dealer: in every phase, every node that cannot decide adopts
the *same* globally known random bit.  Because the coin is perfect — always
common, always unbiased — a phase in which no honest node has decided ends in
agreement with probability 1/2, so the protocol terminates in a constant
expected number of phases.  The paper positions both Chor–Coan and its own
protocol as ways of *removing the dealer* from Rabin's scheme, which makes
this the natural idealised reference point in the baseline landscape
experiment (E9).

The dealer is simulated by a pseudo-random stream keyed by a public
``dealer_seed`` shared by all nodes: the coin for phase ``i`` is the ``i``-th
bit of that stream.  There is no cryptographic hiding — consistent with the
full-information model, the adversary is assumed to know the coin values.

Batched sweeps run on the ``dealer-coin`` kernel
(:mod:`repro.baselines.kernels.rabin`), which replays the same public dealer
stream and is therefore bit-identical to this node under the failure-free and
silent behaviours.
"""

from __future__ import annotations

import numpy as np

from repro.core.agreement import CommitteeAgreementNode
from repro.core.parameters import ProtocolParameters, Regime, log2n

import math


#: Domain tag mixed into the dealer's Philox key, keeping the public coin
#: stream separated from the node/adversary/environment stream domains.
_DEALER_DOMAIN = 0x0D


def dealer_coin_bit(dealer_seed: int, phase: int) -> int:
    """The dealer's public coin for ``phase`` (identical at every node).

    Single source of truth for the dealer stream: both
    :class:`RabinDealerNode` and the batched ``dealer-coin`` kernel
    (:mod:`repro.baselines.kernels.rabin`) call this, which is what makes the
    kernel bit-identical to the object simulator.
    """
    mask = (1 << 64) - 1
    key = np.array(
        [(int(dealer_seed) ^ (_DEALER_DOMAIN << 56)) & mask, phase & mask], dtype=np.uint64
    )
    stream = np.random.Generator(np.random.Philox(key=key))
    return int(stream.integers(0, 2))


def rabin_parameters(n: int, t: int, *, phases_factor: float = 4.0) -> ProtocolParameters:
    """Phase schedule for Rabin's protocol.

    Each phase succeeds with probability at least 1/2 once no spoiling is
    possible, so ``ceil(phases_factor * log2 n)`` phases give a w.h.p.
    guarantee; the committee size is irrelevant (the dealer flips the coin)
    and is set to ``n`` for bookkeeping.
    """
    num_phases = max(1, math.ceil(phases_factor * log2n(n)))
    return ProtocolParameters(
        n=n, t=t, alpha=phases_factor, num_phases=num_phases, committee_size=n, regime=Regime.LINEAR
    )


class RabinDealerNode(CommitteeAgreementNode):
    """One participant of Rabin's dealer-coin protocol.

    Args:
        dealer_seed: Public seed of the dealer's coin stream.  Every node in a
            run must be constructed with the same value (the runner does this).
    """

    protocol_name = "rabin-dealer"

    def __init__(
        self,
        node_id: int,
        n: int,
        t: int,
        input_value: int,
        rng: np.random.Generator,
        *,
        dealer_seed: int = 0,
        params: ProtocolParameters | None = None,
        phases_factor: float = 4.0,
    ):
        if params is None:
            params = rabin_parameters(n, t, phases_factor=phases_factor)
        super().__init__(node_id, n, t, input_value, rng, params=params)
        self.dealer_seed = int(dealer_seed)

    def _phase_coin(self, phase: int, shares: dict[int, int]) -> int:
        return dealer_coin_bit(self.dealer_seed, phase)
