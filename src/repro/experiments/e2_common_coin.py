"""E2 — Common coin success probability (Theorem 3 / Corollary 1).

Paper claim
-----------
Algorithm 1 implements a common coin (all honest nodes output the same bit
with probability at least a constant — the proof gives 1/12 — and the bit is
bounded away from 0 and 1) for up to ``sqrt(n)/2`` Byzantine nodes, even
against an adaptive rushing adversary that sees the flips before corrupting.
Corollary 1 transfers the statement to ``k`` designated flippers with at most
``sqrt(k)/2`` Byzantine among them.

Experiment
----------
Monte-Carlo estimate of ``P(common)`` and of the conditional bias under the
rushing straddle attack, as a function of the number of flippers, with the
Byzantine budget set to ``floor(sqrt(k)/2)``.  Three reference columns:
the paper's Paley–Zygmund bound (1/12-style), the exact anti-concentration
probability, and the measured rate.

The sweep dispatches through :func:`repro.engine.run_coin_sweep`: the batched
kernel evaluates the whole ``(trials, n)`` flip plane at once, which is why
the full sweep can afford tens of thousands of trials per point where the
seed's serial scheduler loop ran 150.  ``engine="object"`` reproduces that
serial loop (cross-validated statistically in the test-suite).
"""

from __future__ import annotations

import math

from repro.analysis.paley_zygmund import (
    coin_success_lower_bound,
    exact_common_coin_probability,
    sum_exceeds_probability,
)
from repro.analysis.statistics import success_rate
from repro.engine import run_coin_sweep
from repro.metrics.reporting import ExperimentReport

QUICK_SWEEP = ([9, 16, 36, 64], 400)
FULL_SWEEP = ([16, 36, 64, 144, 256, 576, 1024], 20000)


def run(quick: bool = True, engine: str = "auto") -> ExperimentReport:
    """Run the E2 Monte-Carlo estimate and return the report."""
    sizes, trials = QUICK_SWEEP if quick else FULL_SWEEP
    report = ExperimentReport(
        experiment_id="E2",
        title="Common coin success probability under the adaptive rushing straddle attack",
        columns=[
            "n", "byzantine_budget", "trials", "measured_common", "ci_low", "ci_high",
            "exact_adaptive", "exact_static", "paper_bound", "p_one_given_common",
        ],
    )
    report.add_note("budget = floor(sqrt(n)/2)  (Theorem 3's tolerance)")
    report.add_note(
        "paper_bound = Paley-Zygmund constant (>= 1/12); "
        "exact_adaptive = P(|sum of n flips| > 2*budget), the guaranteed-common probability "
        "against adaptive corruption; exact_static = the same for a statically corrupted set"
    )
    for n in sizes:
        budget = int(math.floor(0.5 * math.sqrt(n)))
        sweep = run_coin_sweep(n, budget, trials=trials, base_seed=0, engine=engine)
        common = sweep.common_count
        ones = sweep.ones_given_common
        estimate = success_rate(common, trials)
        report.add_row(
            {
                "n": n,
                "byzantine_budget": budget,
                "trials": trials,
                "measured_common": estimate.rate,
                "ci_low": estimate.low,
                "ci_high": estimate.high,
                # An adaptive rushing adversary with budget f can split the
                # coin only when the magnitude of the full honest sum is at
                # most ~2f (it corrupts same-sign flippers, shrinking the sum
                # and gaining control simultaneously), so P(|S_n| > 2f) is the
                # guaranteed-common probability against it.
                "exact_adaptive": min(1.0, 2.0 * sum_exceeds_probability(n, 2.0 * budget)),
                "exact_static": exact_common_coin_probability(n, budget),
                "paper_bound": coin_success_lower_bound(n),
                "p_one_given_common": ones / common if common else float("nan"),
            }
        )
    return report
