"""Protocol node abstraction.

Every agreement protocol in this repository (the paper's Algorithm 3, the
Chor–Coan baseline, Rabin's dealer-coin protocol, Ben-Or, phase-king, EIG and
the sampling-majority protocol) is implemented as a subclass of
:class:`ProtocolNode`.  A node is a per-process state machine driven by the
synchronous scheduler:

1. at the start of round ``r`` the scheduler calls :meth:`ProtocolNode.generate`
   to obtain the node's outgoing messages for that round (this is where the
   node draws any randomness for the round);
2. the adversary observes all honest messages (rushing), adaptively corrupts
   nodes and substitutes messages for the corrupted ones;
3. the scheduler delivers each node's inbox through
   :meth:`ProtocolNode.deliver`, at which point the node updates its state and
   may decide and/or terminate.

Once a node is corrupted the scheduler stops invoking it; its behaviour is
thereafter entirely determined by the adversary.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ProtocolViolationError
from repro.simulator.messages import Message


@dataclass(frozen=True)
class HonestNodeRecord:
    """Snapshot of an honest node's externally relevant state.

    Used by execution traces and by validators; the adversary receives the
    full node objects instead (full-information model).
    """

    node_id: int
    value: int | None
    decided: bool
    terminated: bool
    output: int | None


class ProtocolNode(ABC):
    """Abstract base class for a single protocol participant.

    Args:
        node_id: This node's identifier in ``0 .. n-1``.  The paper indexes
            nodes from 1; the implementation uses 0-based ids and the committee
            partition accounts for the shift.
        n: Total number of nodes in the (complete) network.
        t: Declared upper bound on the number of Byzantine nodes the protocol
            must tolerate.
        input_value: The node's binary input.
        rng: Private random stream of this node (see
            :class:`repro.simulator.rng.RandomnessSource`).

    Subclasses must implement :meth:`generate` and :meth:`deliver` and are
    expected to set :attr:`output` and :attr:`terminated` when they decide.
    """

    #: Human-readable protocol name, overridden by subclasses.
    protocol_name: str = "abstract"

    def __init__(self, node_id: int, n: int, t: int, input_value: int, rng: np.random.Generator):
        if not 0 <= node_id < n:
            raise ValueError(f"node_id {node_id} out of range for n={n}")
        if input_value not in (0, 1):
            raise ValueError(f"input_value must be 0 or 1, got {input_value}")
        self.node_id = node_id
        self.n = n
        self.t = t
        self.input_value = input_value
        self.rng = rng
        #: Current estimate of the agreement value (``val`` in the paper).
        self.value: int = input_value
        #: ``decided`` flag from the paper's pseudocode.
        self.decided: bool = False
        #: Set once the node has irrevocably terminated with :attr:`output`.
        self.terminated: bool = False
        #: Final output bit; ``None`` until the node terminates.
        self.output: int | None = None

    # ------------------------------------------------------------------
    # Scheduler-facing interface
    # ------------------------------------------------------------------
    @abstractmethod
    def generate(self, round_index: int) -> list[Message]:
        """Produce the messages this node sends in global round ``round_index``.

        Called exactly once per round for every honest, non-terminated node.
        All randomness for the round must be drawn here so that a rushing
        adversary (which sees these messages before acting) is modelled
        faithfully.
        """

    @abstractmethod
    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        """Process the messages received in global round ``round_index``.

        ``inbox`` contains every message addressed to this node that was
        actually delivered, including the node's own broadcast to itself when
        the protocol counts it.
        """

    # ------------------------------------------------------------------
    # Helpers shared by all protocols
    # ------------------------------------------------------------------
    def decide(self, value: int) -> None:
        """Record the final output and mark the node terminated.

        Raises:
            ProtocolViolationError: If the node attempts to change an output
                it has already committed to (honest nodes never do this).
        """
        if value not in (0, 1):
            raise ProtocolViolationError(
                f"node {self.node_id} attempted to decide non-binary value {value!r}"
            )
        if self.terminated and self.output != value:
            raise ProtocolViolationError(
                f"node {self.node_id} attempted to change its decision from "
                f"{self.output} to {value}"
            )
        self.output = value
        self.terminated = True

    def record(self) -> HonestNodeRecord:
        """Return an immutable snapshot of this node's public state."""
        return HonestNodeRecord(
            node_id=self.node_id,
            value=self.value,
            decided=self.decided,
            terminated=self.terminated,
            output=self.output,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "terminated" if self.terminated else "running"
        return (
            f"<{type(self).__name__} id={self.node_id} val={self.value} "
            f"decided={self.decided} {status}>"
        )


class ConstantNode(ProtocolNode):
    """Trivial protocol node that immediately decides its own input.

    Useful for exercising the simulator machinery in isolation (it obviously
    does not solve Byzantine agreement unless all inputs agree).
    """

    protocol_name = "constant"

    def generate(self, round_index: int) -> list[Message]:
        return []

    def deliver(self, round_index: int, inbox: list[Message]) -> None:
        self.decide(self.input_value)
