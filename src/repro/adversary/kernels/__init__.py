"""Batched adversary kernels — Byzantine strategies as ``(B, n)``-plane ops.

The committee engine's original adversary fast paths (``none``/``straddle``/
``silent``/``crash``/``random-noise``) are hard-wired into the engine loop.
This package makes the remaining strategies pluggable: each adversary is an
:class:`~repro.adversary.kernels.base.AdversaryKernel` the engine drives
through per-round hooks, corrupting against per-trial budgets and returning
additive per-recipient announcement planes.  See :mod:`.base` for the
protocol and the engine-side contract.

:data:`ADVERSARY_PLANE_KERNELS` is the behaviour registry the committee
engine consults: behaviour name -> kernel class.  The engine merges these
names into :data:`repro.simulator.vectorized.VECTORIZED_ADVERSARIES`, and
:data:`repro.engine.ADVERSARY_FAST_PATH` maps the object-simulator strategy
names onto them, so ``run_sweep``/``select_engine`` dispatch per
``(protocol, adversary)`` pair exactly as for the built-in behaviours.
"""

from __future__ import annotations

from repro.adversary.kernels.base import (
    AdversaryKernel,
    KernelContext,
    Round1Effect,
    Round2Effect,
)
from repro.adversary.kernels.committee_targeting import CommitteeTargetingKernel
from repro.adversary.kernels.equivocate import EquivocatePlaneKernel
from repro.adversary.kernels.static import StaticEquivocateKernel
from repro.core.parameters import ProtocolParameters
from repro.exceptions import ConfigurationError

#: Behaviour name -> kernel class.  These are the committee-engine adversary
#: behaviours served by the plane-kernel path (the aggregate-counter and
#: noise behaviours stay on their dedicated engine loops).
ADVERSARY_PLANE_KERNELS: dict[str, type[AdversaryKernel]] = {
    "static": StaticEquivocateKernel,
    "equivocate": EquivocatePlaneKernel,
    "committee-targeting": CommitteeTargetingKernel,
}


def build_adversary_kernel(
    behaviour: str, *, n: int, t: int, params: ProtocolParameters
) -> AdversaryKernel:
    """Instantiate the plane kernel for one behaviour name.

    One kernel instance serves one batch execution; the constructor signature
    is uniform so the engine needs no per-strategy wiring.
    """
    try:
        kernel_class = ADVERSARY_PLANE_KERNELS[behaviour]
    except KeyError:
        raise ConfigurationError(
            f"no adversary plane kernel for behaviour {behaviour!r}; "
            f"available: {sorted(ADVERSARY_PLANE_KERNELS)}"
        ) from None
    return kernel_class(n=n, t=t, params=params)


__all__ = [
    "ADVERSARY_PLANE_KERNELS",
    "AdversaryKernel",
    "CommitteeTargetingKernel",
    "EquivocatePlaneKernel",
    "KernelContext",
    "Round1Effect",
    "Round2Effect",
    "StaticEquivocateKernel",
    "build_adversary_kernel",
]
