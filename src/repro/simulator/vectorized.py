"""Fast NumPy execution engine for large parameter sweeps.

The object-level simulator (:mod:`repro.simulator.scheduler`) delivers every
message individually, which is faithful but quadratic-per-round in Python; at
``n`` in the thousands a single run of the paper's protocol under attack takes
minutes.  The benchmark sweeps (experiments E1, E3, E4, E5) therefore use this
vectorised engine, which simulates the *same* protocols — Algorithm 3 (bounded
or Las Vegas) and the Chor–Coan baseline — under the two adversary behaviours
that matter for the round-complexity claims:

* ``"none"``   — no corruption (failure-free runs);
* ``"straddle"`` — the greedy rushing coin attack of
  :class:`repro.adversary.strategies.coin_attack.CoinAttackAdversary`:
  silent in round 1, and in round 2 it corrupts just enough same-sign
  committee members to make half the honest nodes read the coin as 1 and the
  other half as 0, until its budget runs out.

The engine exploits the fact that under these behaviours every honest node
receives the *same* multiset of round-1/round-2 announcements (only the coin
is per-recipient), so per-recipient message matrices never need to be
materialised: one pass over aggregate counters per round reproduces the exact
state evolution of the object simulator.  The test-suite cross-validates the
two engines on deterministic corner cases and statistically on distributions
of phase counts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.parameters import ProtocolParameters, validate_n_t
from repro.baselines.chor_coan import chor_coan_parameters
from repro.exceptions import ConfigurationError

#: CONGEST cost (bits) of the round-1 and round-2 payloads, kept consistent
#: with repro.simulator.messages.ValueAnnouncement / CombinedAnnouncement.
_ROUND_PAYLOAD_BITS = 35


@dataclass(frozen=True)
class VectorizedRunResult:
    """Outcome of one vectorised execution."""

    n: int
    t: int
    rounds: int
    phases: int
    agreement: bool
    validity: bool
    decision: int | None
    corrupted: int
    messages: int
    bits: int
    timed_out: bool


@dataclass
class VectorizedAgreementSimulator:
    """Vectorised simulation of a committee-phase agreement protocol.

    Args:
        n: Network size.
        t: Byzantine budget (``t < n/3``).
        params: Committee geometry (the paper's formula or Chor–Coan's).
        adversary: ``"none"`` or ``"straddle"``.
        las_vegas: When True the protocol cycles committees until termination;
            when False it stops after ``params.num_phases`` phases and decides
            by exhaustion (the w.h.p. variant).
        max_phases: Safety cap for Las Vegas runs.
    """

    n: int
    t: int
    params: ProtocolParameters
    adversary: str = "straddle"
    las_vegas: bool = True
    max_phases: int | None = None

    def __post_init__(self) -> None:
        validate_n_t(self.n, self.t)
        if self.adversary not in ("none", "straddle"):
            raise ConfigurationError(
                f"vectorized adversary must be 'none' or 'straddle', got {self.adversary!r}"
            )
        if self.max_phases is None:
            # The straddle adversary spends at least one corruption per spoiled
            # phase, so t + O(log n) phases always suffice; keep a wide margin.
            self.max_phases = 2 * self.t + 50 * max(1, int(math.log2(max(2, self.n)))) + 50

    # ------------------------------------------------------------------
    def run(self, inputs: np.ndarray, rng: np.random.Generator) -> VectorizedRunResult:
        """Execute the protocol on ``inputs`` using randomness from ``rng``."""
        n, t = self.n, self.t
        if inputs.shape != (n,):
            raise ConfigurationError(f"inputs must have shape ({n},), got {inputs.shape}")
        committee_size = self.params.committee_size
        num_committees = max(1, math.ceil(n / committee_size))
        phase_cap = self.max_phases if self.las_vegas else self.params.num_phases
        assert phase_cap is not None

        value = inputs.astype(np.int8).copy()
        decided = np.zeros(n, dtype=bool)
        corrupted = np.zeros(n, dtype=bool)
        terminated = np.zeros(n, dtype=bool)
        flush_phase = np.full(n, -1, dtype=np.int64)  # -1: not finishing
        output = np.full(n, -1, dtype=np.int8)
        budget = t
        messages = 0
        rounds = 0
        phases = 0
        honest_inputs = inputs.copy()

        def active_mask() -> np.ndarray:
            return ~corrupted & ~terminated

        for phase in range(1, phase_cap + 1):
            if not np.any(active_mask()):
                break
            phases = phase
            # Sender set: every honest, non-terminated node broadcasts in both
            # rounds (including nodes in their flush phase).
            senders = active_mask()
            sender_count = int(senders.sum())
            updatable = senders & (flush_phase == -1)

            # ---------------- Round 1 ----------------
            rounds += 1
            messages += sender_count * n
            ones = int(value[senders].sum())
            zeros = sender_count - ones
            if ones >= n - t:
                value[updatable] = 1
                decided[updatable] = True
            elif zeros >= n - t:
                value[updatable] = 0
                decided[updatable] = True
            else:
                decided[updatable] = False

            # ---------------- Round 2 ----------------
            rounds += 1
            messages += sender_count * n
            decided_senders = senders & decided
            d1 = int(value[decided_senders].sum())
            d0 = int(decided_senders.sum()) - d1

            committee_index = (phase - 1) % num_committees
            start = committee_index * committee_size
            stop = min(n, start + committee_size)
            committee = np.zeros(n, dtype=bool)
            committee[start:stop] = True
            honest_committee = committee & senders
            shares = np.zeros(n, dtype=np.int8)
            flips = rng.integers(0, 2, size=int(honest_committee.sum())) * 2 - 1
            shares[honest_committee] = flips.astype(np.int8)
            honest_sum = int(shares.sum())
            controlled_in_committee = int((committee & corrupted).sum())

            finish_value = None
            if d1 >= n - t:
                finish_value = 1
            elif d0 >= n - t:
                finish_value = 0
            adopt_value = None
            if finish_value is None:
                if d1 >= t + 1:
                    adopt_value = 1
                elif d0 >= t + 1:
                    adopt_value = 0

            if finish_value is not None:
                value[updatable] = finish_value
                decided[updatable] = True
                flush_phase[updatable] = phase + 1
            elif adopt_value is not None:
                value[updatable] = adopt_value
                decided[updatable] = True
            else:
                # Case 3: the committee coin, possibly under attack.
                spoiled = False
                if self.adversary == "straddle" and budget > 0:
                    sign = 1 if honest_sum >= 0 else -1
                    if honest_sum >= 0:
                        needed = max(0, math.ceil((honest_sum - controlled_in_committee + 1) / 2))
                    else:
                        needed = max(0, math.ceil((-honest_sum - controlled_in_committee) / 2))
                    same_sign = honest_committee & (shares == sign)
                    available = int(same_sign.sum())
                    if needed <= budget and needed <= available:
                        # Corrupt `needed` same-sign committee members.
                        target_ids = np.flatnonzero(same_sign)[:needed]
                        corrupted[target_ids] = True
                        budget -= needed
                        controlled_total = controlled_in_committee + needed
                        recipients = np.flatnonzero(active_mask() & (flush_phase == -1))
                        # Adversary round-2 traffic: controlled members to all honest.
                        messages += controlled_total * int(active_mask().sum())
                        half = len(recipients) // 2
                        value[recipients[half:]] = 1
                        value[recipients[:half]] = 0
                        decided[recipients] = False
                        spoiled = True
                if not spoiled:
                    coin = 1 if honest_sum >= 0 else 0
                    recipients = active_mask() & (flush_phase == -1)
                    value[recipients] = coin
                    decided[recipients] = False

            # Flush-phase terminations (nodes finishing this phase).
            finishing_now = active_mask() & (flush_phase != -1) & (flush_phase <= phase)
            if np.any(finishing_now):
                output[finishing_now] = value[finishing_now]
                terminated[finishing_now] = True

            # Bounded variant: decide by exhaustion after the last phase.
            if not self.las_vegas and phase >= self.params.num_phases:
                remaining = active_mask()
                output[remaining] = value[remaining]
                terminated[remaining] = True

        honest = ~corrupted
        finished = honest & terminated
        timed_out = bool(np.any(honest & ~terminated))
        if timed_out:
            # Treat unfinished honest nodes' current value as their output so
            # that agreement/validity can still be evaluated.
            output[honest & ~terminated] = value[honest & ~terminated]
        outputs = output[honest]
        agreement = bool(len(np.unique(outputs)) <= 1) if outputs.size else True
        decision = int(outputs[0]) if agreement and outputs.size else None
        honest_input_values = np.unique(honest_inputs[honest])
        validity = True
        if len(honest_input_values) == 1 and outputs.size:
            validity = bool(np.all(outputs == honest_input_values[0]))
        return VectorizedRunResult(
            n=n,
            t=t,
            rounds=rounds,
            phases=phases,
            agreement=agreement,
            validity=validity,
            decision=decision,
            corrupted=int(corrupted.sum()),
            messages=messages,
            bits=messages * _ROUND_PAYLOAD_BITS,
            timed_out=timed_out,
        )


# ----------------------------------------------------------------------
# Convenience sweep API used by the benchmarks
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VectorizedAggregate:
    """Aggregate statistics over several vectorised trials."""

    n: int
    t: int
    protocol: str
    adversary: str
    trials: int
    mean_rounds: float
    mean_phases: float
    max_rounds: int
    mean_messages: float
    agreement_rate: float
    validity_rate: float
    mean_corrupted: float


def _parameters_for(protocol: str, n: int, t: int, alpha: float) -> ProtocolParameters:
    if protocol in ("committee-ba", "committee-ba-las-vegas"):
        return ProtocolParameters.derive(n, t, alpha)
    if protocol in ("chor-coan", "chor-coan-las-vegas"):
        return chor_coan_parameters(n, t, alpha=alpha)
    raise ConfigurationError(
        "the vectorized engine supports the committee-ba and chor-coan protocols, "
        f"got {protocol!r}"
    )


def run_vectorized_trials(
    n: int,
    t: int,
    *,
    protocol: str = "committee-ba-las-vegas",
    adversary: str = "straddle",
    inputs: str = "split",
    trials: int = 10,
    seed: int = 0,
    alpha: float = 4.0,
) -> VectorizedAggregate:
    """Run several vectorised trials and aggregate them.

    Mirrors :func:`repro.core.runner.run_trials` closely enough that benchmark
    code can switch between the two engines by network size.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    params = _parameters_for(protocol, n, t, alpha)
    las_vegas = protocol.endswith("las-vegas")
    simulator = VectorizedAgreementSimulator(
        n=n, t=t, params=params, adversary=adversary, las_vegas=las_vegas
    )
    rounds: list[int] = []
    phases: list[int] = []
    messages: list[int] = []
    corrupted: list[int] = []
    agreements = 0
    validities = 0
    for k in range(trials):
        rng = np.random.Generator(np.random.Philox(key=np.array([seed, k], dtype=np.uint64)))
        if inputs == "split":
            input_bits = np.zeros(n, dtype=np.int8)
            input_bits[n // 2 :] = 1
        elif inputs == "random":
            input_bits = rng.integers(0, 2, size=n).astype(np.int8)
        elif inputs == "unanimous-0":
            input_bits = np.zeros(n, dtype=np.int8)
        elif inputs == "unanimous-1":
            input_bits = np.ones(n, dtype=np.int8)
        else:
            raise ConfigurationError(f"unknown input pattern {inputs!r}")
        result = simulator.run(input_bits, rng)
        rounds.append(result.rounds)
        phases.append(result.phases)
        messages.append(result.messages)
        corrupted.append(result.corrupted)
        agreements += int(result.agreement)
        validities += int(result.validity)
    return VectorizedAggregate(
        n=n,
        t=t,
        protocol=protocol,
        adversary=adversary,
        trials=trials,
        mean_rounds=float(np.mean(rounds)),
        mean_phases=float(np.mean(phases)),
        max_rounds=int(np.max(rounds)),
        mean_messages=float(np.mean(messages)),
        agreement_rate=agreements / trials,
        validity_rate=validities / trials,
        mean_corrupted=float(np.mean(corrupted)),
    )
