#!/usr/bin/env python3
"""Quickstart: one Byzantine agreement run under an adaptive adversary.

Runs the paper's committee-based protocol (Algorithm 3) on a 64-node network
with a maximally split input, attacked by the strongest implemented adversary
— the rushing adaptive coin-straddling attack — and prints what happened:
the decision, the number of rounds/phases, the messages sent, which nodes the
adversary chose to corrupt and when.

Usage::

    python examples/quickstart.py [n] [t] [seed]
"""

from __future__ import annotations

import sys

from repro import run_agreement
from repro.metrics.collectors import collect_run_metrics
from repro.metrics.reporting import format_table


def main(n: int = 64, t: int = 12, seed: int = 7) -> None:
    result = run_agreement(
        n=n,
        t=t,
        protocol="committee-ba",
        adversary="coin-attack",
        inputs="split",
        seed=seed,
        collect_trace=True,
    )
    result.check()  # raises if agreement or validity were violated

    params = result.extra["params"]
    print("Configuration")
    print(f"  n = {n} nodes, declared fault bound t = {t} (< n/3)")
    print(f"  committees: {params.num_committees} of size {params.committee_size} "
          f"({params.num_phases} scheduled phases, regime: {params.regime.value})")
    print(f"  inputs: first half 0, second half 1 (worst case)")
    print(f"  adversary: adaptive rushing coin-straddling attack, budget {t}")
    print()
    print("Outcome")
    print(f"  decision          : {result.decision}")
    print(f"  agreement/validity: {result.agreement}/{result.validity}")
    print(f"  rounds (phases)   : {result.rounds} ({result.extra['phases']})")
    print(f"  messages / bits   : {result.message_count} / {result.bit_count}")
    print(f"  corrupted nodes   : {sorted(result.corrupted)}")
    print()

    assert result.trace is not None
    schedule = result.trace.corruption_schedule()
    if schedule:
        print("Adaptive corruption schedule (round -> node):")
        for round_index, node_id in schedule:
            phase = round_index // 2 + 1
            print(f"  round {round_index:3d} (phase {phase:2d}, coin-flip round): node {node_id}")
    else:
        print("The adversary never corrupted anyone (nothing to attack).")
    print()

    print("Single-run metrics row (what the benchmark harness records):")
    print(format_table([collect_run_metrics(result)]))


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
