"""Cross-validation of the batched baseline kernels against the object
simulator, and of the protocol-capability dispatch built on top of them.

The contract mirrors PR 1's adversary validation: kernels are *bit-identical*
to the object simulator wherever the per-trial randomness allows (Rabin's
public dealer stream, the deterministic phase-king and EIG protocols) and
*statistically consistent* where the object simulator consumes per-node
streams the kernels cannot replay (Ben-Or's private coins, sampling-majority
draws, the straddle adversary's share-dependent spending)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.kernels import (
    BASELINE_KERNELS,
    run_ben_or_trials,
    run_coin_trials,
    run_eig_trials,
    run_phase_king_trials,
    run_rabin_trials,
    run_sampling_majority_trials,
)
from repro.core.runner import AgreementExperiment, run_trials
from repro.engine import PROTOCOL_KERNELS, run_coin_sweep, run_sweep
from repro.exceptions import ConfigurationError, SimulationError


def _object_summaries(protocol, adversary, n, t, inputs="split", trials=4, seed=11, **kwargs):
    experiment = AgreementExperiment(
        n=n, t=t, protocol=protocol, adversary=adversary, inputs=inputs, **kwargs
    )
    return run_trials(experiment, num_trials=trials, base_seed=seed).trials


def _assert_identical(kernel_results, object_summaries):
    """Field-by-field equality (the per-trial seed labels legitimately differ:
    the object engine records ``base_seed + k``, the kernels record ``k``)."""
    assert len(kernel_results) == len(object_summaries)
    for vec, obj in zip(kernel_results, object_summaries):
        assert vec.rounds == obj.rounds
        assert vec.phases == obj.phases
        assert vec.agreement == obj.agreement
        assert vec.validity == obj.validity
        assert vec.decision == obj.decision
        assert vec.messages == obj.messages
        assert vec.bits == obj.bits
        assert vec.corrupted == obj.corrupted
        assert vec.timed_out == obj.timed_out


class TestRabinKernel:
    @pytest.mark.parametrize("adversary,obj_adversary", [("none", "null"), ("silent", "silent")])
    @pytest.mark.parametrize("n,t", [(19, 3), (25, 6)])
    def test_bit_identical_to_object_simulator(self, adversary, obj_adversary, n, t):
        # The dealer stream is the only randomness that matters, and the
        # kernel replays it exactly (dealer seed = the trial's master seed).
        vec = run_rabin_trials(n, t, adversary=adversary, inputs="split", trials=4, seed=11)
        obj = _object_summaries("rabin", obj_adversary, n, t)
        _assert_identical(vec.results, obj)

    def test_bit_identical_on_unanimous_inputs(self):
        vec = run_rabin_trials(16, 5, adversary="none", inputs="unanimous-1", trials=3, seed=2)
        obj = _object_summaries("rabin", "null", 16, 5, inputs="unanimous-1", trials=3, seed=2)
        _assert_identical(vec.results, obj)
        assert vec.validity_rate == 1.0

    def test_straddle_statistically_consistent_with_coin_attack(self):
        # The attack is futile against a public dealer coin in both engines:
        # a constant number of phases, full agreement, some corruptions spent.
        vec = run_rabin_trials(25, 6, adversary="straddle", inputs="split", trials=20, seed=5)
        obj = run_trials(
            AgreementExperiment(n=25, t=6, protocol="rabin", adversary="coin-attack",
                                inputs="split"),
            num_trials=8, base_seed=5,
        )
        assert vec.agreement_rate == obj.agreement_rate == 1.0
        assert vec.mean_phases == pytest.approx(obj.mean_phases, abs=2.0)


class TestPhaseKingKernel:
    @pytest.mark.parametrize(
        "adversary,obj_adversary", [("none", "null"), ("silent", "silent"), ("static", "static")]
    )
    @pytest.mark.parametrize("n,t", [(13, 3), (21, 5)])
    def test_bit_identical_to_object_simulator(self, adversary, obj_adversary, n, t):
        for inputs in ("split", "unanimous-0"):
            vec = run_phase_king_trials(n, t, adversary=adversary, inputs=inputs, trials=3, seed=11)
            obj = _object_summaries("phase-king", obj_adversary, n, t, inputs=inputs, trials=3)
            _assert_identical(vec.results, obj)

    def test_deterministic_round_schedule(self):
        vec = run_phase_king_trials(17, 4, adversary="static", trials=5, seed=0)
        assert all(result.rounds == 2 * (4 + 1) for result in vec.results)
        assert vec.agreement_rate == 1.0

    def test_resilience_bound_enforced(self):
        with pytest.raises(ConfigurationError):
            run_phase_king_trials(16, 4, adversary="none", trials=2)


class TestEIGKernel:
    @pytest.mark.parametrize(
        "adversary,obj_adversary", [("none", "null"), ("silent", "silent"), ("static", "static")]
    )
    @pytest.mark.parametrize("n,t", [(7, 1), (10, 2), (13, 2)])
    def test_bit_identical_to_object_simulator(self, adversary, obj_adversary, n, t):
        vec = run_eig_trials(n, t, adversary=adversary, inputs="split", trials=3, seed=11)
        obj = _object_summaries("eig", obj_adversary, n, t, trials=3)
        _assert_identical(vec.results, obj)

    def test_tree_size_guard(self):
        with pytest.raises(ConfigurationError):
            run_eig_trials(512, 3, adversary="static", trials=2)

    def test_rounds_are_t_plus_one(self):
        vec = run_eig_trials(10, 2, adversary="silent", trials=2, seed=0)
        assert all(result.rounds == 3 for result in vec.results)


class TestBenOrKernel:
    def test_statistically_consistent_with_object_simulator(self):
        # Per-node coin streams cannot be replayed; the geometric phase-count
        # distribution must agree.  n=9/t=1 keeps the object runs affordable
        # (expected ~2^7 phases per trial).
        vec = run_ben_or_trials(9, 1, adversary="silent", inputs="split",
                                trials=200, seed=3, max_rounds=2000)
        obj = run_trials(
            AgreementExperiment(n=9, t=1, protocol="ben-or", adversary="silent",
                                inputs="split", max_rounds=2000, allow_timeout=True),
            num_trials=15, base_seed=3,
        )
        # Terminating runs always agree, and phase counts match within the
        # (wide) Monte-Carlo error of a heavy-tailed geometric distribution.
        assert vec.agreement_rate >= 0.9
        assert obj.agreement_rate >= 0.9
        assert vec.mean_phases == pytest.approx(obj.mean_phases, rel=0.8)

    def test_unanimous_inputs_decide_immediately(self):
        vec = run_ben_or_trials(16, 2, adversary="none", inputs="unanimous-1", trials=4, seed=1)
        assert vec.agreement_rate == vec.validity_rate == 1.0
        assert vec.mean_phases <= 3

    def test_round_cap_censors_instead_of_running_forever(self):
        vec = run_ben_or_trials(64, 8, adversary="silent", inputs="split",
                                trials=4, seed=0, max_rounds=50)
        assert all(result.timed_out for result in vec.results)
        assert all(result.rounds == 50 for result in vec.results)


class TestSamplingMajorityKernel:
    def test_statistically_consistent_with_object_simulator(self):
        vec = run_sampling_majority_trials(32, 1, adversary="silent", inputs="random",
                                           trials=60, seed=5)
        obj = run_trials(
            AgreementExperiment(n=32, t=1, protocol="sampling-majority",
                                adversary="silent", inputs="random"),
            num_trials=15, base_seed=5,
        )
        # The iteration schedule is deterministic, so rounds match exactly;
        # message volume is stochastic (how many samples land on honest
        # peers) but concentrates tightly around the same mean.
        assert vec.mean_rounds == obj.mean_rounds
        assert vec.mean_messages == pytest.approx(obj.mean_messages, rel=0.05)
        assert vec.agreement_rate >= 0.9 and obj.agreement_rate >= 0.9

    def test_convergence_on_failure_free_runs(self):
        vec = run_sampling_majority_trials(64, 2, adversary="none", inputs="split",
                                           trials=20, seed=9)
        assert vec.agreement_rate >= 0.9
        expected_iterations = math.ceil(2.0 * math.log2(64) ** 2)
        assert all(result.rounds == 2 * expected_iterations for result in vec.results)


class TestCoinKernel:
    def test_statistically_consistent_with_object_loop(self):
        n, budget = 36, 3
        vec = run_coin_trials(n, budget, trials=3000, seed=0)
        obj = run_coin_sweep(n, budget, trials=150, base_seed=0, engine="object")
        assert obj.engine == "object"
        assert vec.common_rate == pytest.approx(obj.common_rate, abs=0.12)

    def test_never_common_below_exact_never_straddled_regime(self):
        # With budget 0 the adversary can never straddle: always common.
        result = run_coin_trials(25, 0, trials=200, seed=1)
        assert result.common_rate == 1.0
        # With a budget covering any |S| the straddle always lands.
        result = run_coin_trials(25, 25, trials=200, seed=1)
        assert result.common_rate == 0.0

    def test_conditional_bias_is_bounded(self):
        result = run_coin_trials(64, 4, trials=5000, seed=2)
        p_one = result.ones_given_common / result.common_count
        assert 0.05 <= p_one <= 0.95

    def test_argument_validation(self):
        with pytest.raises(ConfigurationError):
            run_coin_trials(0, 1, trials=10)
        with pytest.raises(ConfigurationError):
            run_coin_trials(9, -1, trials=10)
        with pytest.raises(ConfigurationError):
            run_coin_trials(9, 1, trials=0)
        with pytest.raises(ConfigurationError):
            run_coin_sweep(9, 1, trials=10, engine="warp")


class TestKernelDispatch:
    """run_sweep routes baseline protocols through their kernels."""

    @pytest.mark.parametrize(
        "protocol,adversary,kwargs",
        [
            ("rabin", "coin-attack", {}),
            ("ben-or", "silent", {"max_rounds": 200, "allow_timeout": True}),
            ("phase-king", "static", {}),
            ("eig", "static", {}),
            ("sampling-majority", "silent", {}),
        ],
    )
    def test_auto_dispatch_uses_the_kernel(self, protocol, adversary, kwargs):
        n, t = (13, 2) if protocol == "eig" else (21, 2)
        sweep = run_sweep(n, t, protocol=protocol, adversary=adversary,
                          trials=3, base_seed=1, **kwargs)
        assert sweep.engine == "vectorized"
        assert sweep.num_trials == 3

    def test_exact_kernels_match_the_object_engine_through_run_sweep(self):
        # The acceptance check for the E9 landscape: where the kernel is
        # exact, the quick-mode table values are identical whichever engine
        # run_sweep dispatches to.
        from repro.experiments.e9_baselines import LANDSCAPE, QUICK_CONFIG, landscape_t

        n_quick, t_default, trials = QUICK_CONFIG
        compared = 0
        for index, (protocol, t_spec, adversary, extra) in enumerate(LANDSCAPE):
            spec = PROTOCOL_KERNELS.get(protocol)
            if spec is None or adversary not in spec.exact:
                continue
            n = min(n_quick, extra.get("n_cap", n_quick))
            t = landscape_t(t_spec, n, t_default)
            experiment = AgreementExperiment(
                n=n, t=t, protocol=protocol, adversary=adversary, inputs="split",
                max_rounds=extra.get("max_rounds"),
            )
            seed = 9000 + 100 * index
            fast = run_sweep(experiment=experiment, trials=trials, base_seed=seed,
                             engine="vectorized")
            slow = run_sweep(experiment=experiment, trials=trials, base_seed=seed,
                             engine="object")
            assert fast.summary() == slow.summary(), protocol
            compared += 1
        assert compared >= 2  # phase-king and eig at minimum

    def test_kernel_timeout_without_allow_timeout_raises(self):
        with pytest.raises(SimulationError):
            run_sweep(64, 8, protocol="ben-or", adversary="silent",
                      trials=3, base_seed=0, max_rounds=50)

    def test_params_override_rejected_for_baseline_kernels(self):
        from repro.core.parameters import ProtocolParameters

        params = ProtocolParameters.derive(25, 6)
        with pytest.raises(ConfigurationError):
            run_sweep(25, 6, protocol="rabin", adversary="silent",
                      trials=2, params=params)

    def test_registry_is_complete_and_well_formed(self):
        assert set(BASELINE_KERNELS) == {
            "rabin", "ben-or", "phase-king", "eig", "sampling-majority"
        }
        for protocol, spec in BASELINE_KERNELS.items():
            assert spec.behaviours, protocol
            assert spec.exact <= set(spec.behaviours), protocol
