"""Shared machinery for the batched baseline-protocol kernels.

Every kernel in this package follows the conventions established by the
committee engine (:mod:`repro.simulator.vectorized`):

* a sweep of ``B`` trials executes simultaneously on ``(B, n)`` boolean
  planes, with per-node updates expressed as XOR-blend boolean algebra and
  per-row tallies computed by byte-packing + popcount;
* trial ``k`` of master seed ``s`` draws its randomness from the
  counter-based Philox generator keyed ``(s, k)``
  (:func:`repro.simulator.vectorized.trial_generator`), so per-trial results
  are independent of how trials are batched together;
* results are reported as :class:`VectorizedRunResult` /
  :class:`VectorizedAggregate`, the same shapes
  :func:`repro.engine.run_sweep` folds into :class:`TrialSummary` lists.

This module collects the pieces the kernels share: the per-trial input/RNG
setup, the live CONGEST payload-size table, and the batched
agreement/validity finaliser.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.parameters import validate_n_t
from repro.exceptions import ConfigurationError
from repro.simulator.bitplanes import row_popcount
from repro.simulator.phase_engine import finalize_planes as evaluate_planes
from repro.simulator.messages import (
    CoinShare,
    CombinedAnnouncement,
    KingValue,
    SampleReply,
    SampleRequest,
    ValueAnnouncement,
)
from repro.simulator.vectorized import (
    VectorizedAggregate,
    VectorizedRunResult,
    aggregate_results,
    trial_generator,
    trial_inputs,
)

__all__ = [
    "PAYLOAD_BITS",
    "VectorizedAggregate",
    "VectorizedRunResult",
    "aggregate_results",
    "batch_setup",
    "finalize_planes",
    "row_popcount",
    "trial_generator",
    "trial_inputs",
]

#: CONGEST payload sizes (bits) by payload kind, derived from the live
#: ``bit_size()`` definitions in :mod:`repro.simulator.messages` so the
#: kernels' bit accounting can never drift from the object simulator's.
PAYLOAD_BITS: dict[str, int] = {
    payload.kind(): payload.bit_size()
    for payload in (
        ValueAnnouncement(phase=1, round_in_phase=1, value=0, decided=False),
        CombinedAnnouncement(phase=1, value=0, decided=False, share=None),
        CoinShare(phase=1, share=1),
        KingValue(phase=1, value=0),
        SampleRequest(phase=1),
        SampleReply(phase=1, value=0),
    )
}


def batch_setup(
    n: int, inputs: str, trials: int, seed: int, trial_offset: int = 0
) -> tuple[np.ndarray, list[np.random.Generator]]:
    """Materialise the ``(B, n)`` input plane and the per-trial generators.

    Trial ``k`` uses the Philox key ``(seed, trial_offset + k)`` and — exactly
    as in the committee engine — consumes randomness from its generator only
    for the ``random`` input pattern, so deterministic-input sweeps leave the
    trial streams untouched for the protocol itself.  ``trial_offset`` lets a
    shard worker run a contiguous sub-range of a larger sweep on the sweep's
    global trial counters, keeping sharded execution bit-identical to the
    single-batch run.
    """
    if trials < 1:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rngs = [trial_generator(seed, trial_offset + k) for k in range(trials)]
    rows = np.stack([trial_inputs(n, inputs, rng) for rng in rngs])
    return rows, rngs


def finalize_planes(
    n: int,
    t: int,
    inputs: np.ndarray,
    *,
    output: np.ndarray,
    corrupted: np.ndarray,
    rounds: np.ndarray,
    phases: np.ndarray,
    messages: np.ndarray,
    bits: np.ndarray,
    timed_out: np.ndarray | None = None,
) -> list[VectorizedRunResult]:
    """Evaluate agreement/validity per trial and build the result list.

    Mirrors the committee engine's finaliser: agreement and validity are
    evaluated over the honest nodes' output plane, validity only binds when
    the honest inputs were unanimous, and ``bits`` is passed explicitly
    because the baselines use heterogeneous payload sizes (the committee
    engine's flat 35-bit payload does not hold for king values, EIG reports
    or sampling traffic).
    """
    validate_n_t(n, t)
    evaluated = evaluate_planes(
        n, t, inputs, output=output, corrupted=corrupted,
        messages=messages, timed_out=timed_out,
    )
    results = []
    for b in range(inputs.shape[0]):
        agrees = bool(evaluated["agreement"][b])
        decision: int | None = None
        if agrees and evaluated["has_honest"][b]:
            decision = 1 if evaluated["out_ones"][b] else 0
        results.append(
            VectorizedRunResult(
                n=n,
                t=t,
                rounds=int(rounds[b]),
                phases=int(phases[b]),
                agreement=agrees,
                validity=bool(evaluated["validity"][b]),
                decision=decision,
                corrupted=int(evaluated["corrupted_count"][b]),
                messages=int(messages[b]),
                bits=int(bits[b]),
                timed_out=bool(evaluated["timed_out"][b]),
            )
        )
    return results


def aggregate(
    n: int,
    t: int,
    protocol: str,
    adversary: str,
    results: Sequence[VectorizedRunResult],
) -> VectorizedAggregate:
    """Fold per-trial results into an aggregate carrying the trial tuple."""
    import dataclasses

    folded = aggregate_results(n, t, protocol, adversary, results)
    return dataclasses.replace(folded, results=tuple(results))
