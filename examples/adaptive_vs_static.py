#!/usr/bin/env python3
"""Adaptive vs static adversaries: why adaptivity matters.

The paper's whole point is that the *adaptive* adversary — which picks its
Byzantine nodes during the execution, after seeing the protocol's random
choices — is fundamentally stronger than the static adversary most prior work
assumes.  This example quantifies that on the paper's own protocol: the same
network, the same inputs, the same corruption budget, once attacked by a
static equivocator (nodes fixed up front) and once by the adaptive rushing
coin-straddling attack.

The static adversary can only hope its pre-chosen nodes land in useful
committees; the adaptive one corrupts exactly the committee members whose coin
flips it needs to cancel, so it buys far more delay with the same budget —
while agreement still holds in every run, as Theorem 2 promises.

Every adversary in the comparison now has a batched kernel, so the sweep runs
through ``repro.engine.run_sweep`` with ``engine="auto"`` and the whole table
takes the vectorised fast path (the ``engine`` column shows the dispatch) —
push ``n`` into the thousands and it still completes in seconds.

Usage::

    python examples/adaptive_vs_static.py [n] [t] [trials]
"""

from __future__ import annotations

import sys

from repro.engine import run_sweep
from repro.metrics.reporting import format_table

ADVERSARIES = [
    ("null (no faults)", "null"),
    ("static equivocator", "static"),
    ("adaptive, non-rushing (committee targeting)", "committee-targeting"),
    ("adaptive, rushing (coin straddling)", "coin-attack"),
]


def main(n: int = 48, t: int = 12, trials: int = 10) -> None:
    print(f"Protocol: committee-ba (Las Vegas variant), n={n}, t={t}, "
          f"split inputs, {trials} trials per adversary\n")
    rows = []
    for label, adversary in ADVERSARIES:
        result = run_sweep(
            n, t, protocol="committee-ba-las-vegas", adversary=adversary,
            inputs="split", trials=trials, base_seed=2024, engine="auto",
        )
        rows.append(
            {
                "adversary": label,
                "engine": result.engine,
                "mean_rounds": result.mean_rounds,
                "max_rounds": result.max_rounds,
                "mean_corrupted": result.mean_corrupted,
                "agreement_rate": result.agreement_rate,
                "validity_rate": result.validity_rate,
            }
        )
    print(format_table(rows))
    print()
    static_rounds = rows[1]["mean_rounds"]
    adaptive_rounds = rows[3]["mean_rounds"]
    print(f"The adaptive rushing adversary forces {adaptive_rounds / static_rounds:.1f}x as many "
          f"rounds as the static adversary with the same budget —")
    print("yet agreement and validity hold in every run, as Theorem 2 guarantees.")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
