#!/usr/bin/env python3
"""Early termination: the protocol is only as slow as the adversary is active.

Theorem 2's second clause: if the adversary actually corrupts only ``q < t``
nodes, Algorithm 3 terminates in ``O(min{q^2 log n / n, q / log n})`` rounds —
the declared bound ``t`` fixes the committee geometry, but the running time is
governed by the corruptions actually spent.

This example fixes ``n`` and the declared ``t``, and sweeps the adversary's
actual budget ``q`` from 0 to ``t``.  It prints the measured rounds, the number
of corruptions the adversary used, and the paper's prediction evaluated at
``q`` instead of ``t``.  It also demonstrates the ``decided``-flag mechanism by
showing, for one traced run, in which phase each fraction of honest nodes had
locked in its decision.

Usage::

    python examples/early_termination.py [n] [t] [trials]
"""

from __future__ import annotations

import sys

from repro import run_agreement
from repro.core.parameters import ProtocolParameters, predicted_rounds
from repro.engine import run_sweep
from repro.metrics.reporting import format_table


def main(n: int = 60, t: int = 19, trials: int = 8) -> None:
    print(f"n={n}, declared t={t} (fixes committee geometry), split inputs,")
    print("adversary = coin-straddling attack with its budget capped at q\n")

    # The committee geometry is derived from the *declared* t; handing the
    # sweep a smaller t=q caps the attack budget while the params= override
    # keeps the protocol guarding against the declared bound (exactly how
    # benchmark E3 runs, on the batched vectorised engine).
    declared_params = ProtocolParameters.derive(n, t)
    rows = []
    for q in sorted({0, 2, t // 4, t // 2, t}):
        result = run_sweep(
            n, q, protocol="committee-ba-las-vegas",
            adversary="straddle" if q > 0 else "none", inputs="split",
            trials=trials, base_seed=300 + q, params=declared_params,
        )
        rows.append(
            {
                "q (actual budget)": q,
                "mean_rounds": result.mean_rounds,
                "mean_corruptions_used": result.mean_corrupted,
                "paper_prediction_at_q": predicted_rounds(n, q),
            }
        )
    print(format_table(rows))
    print()

    # One traced run: when did honest nodes lock in?
    traced = run_agreement(
        n=n, t=t, protocol="committee-ba-las-vegas", adversary="coin-attack",
        inputs="split", seed=9, collect_trace=True,
    )
    assert traced.trace is not None
    honest = n - len(traced.corrupted)
    print(f"One traced run (decision {traced.decision}, {traced.rounds} rounds, "
          f"{len(traced.corrupted)} corruptions):")
    for record in traced.trace.records:
        if record.round_index % 2 == 1:  # end of each phase
            phase = record.round_index // 2 + 1
            print(f"  after phase {phase:2d}: {record.honest_decided:3d}/{honest} honest decided, "
                  f"{record.honest_terminated:3d} terminated, "
                  f"{record.corrupted_total:2d} corrupted so far")


if __name__ == "__main__":
    args = [int(a) for a in sys.argv[1:4]]
    main(*args)
