"""Unit tests for deterministic randomness management."""

from __future__ import annotations

import numpy as np
import pytest

from repro.simulator.rng import (
    RandomnessSource,
    fair_bit,
    fair_sign,
    random_inputs,
    split_inputs,
    unanimous_inputs,
)


class TestRandomnessSource:
    def test_same_seed_same_streams(self):
        a = RandomnessSource(7).node_stream(3).integers(0, 1000, size=10)
        b = RandomnessSource(7).node_stream(3).integers(0, 1000, size=10)
        assert np.array_equal(a, b)

    def test_different_nodes_get_different_streams(self):
        source = RandomnessSource(7)
        a = source.node_stream(0).integers(0, 1_000_000, size=20)
        b = source.node_stream(1).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RandomnessSource(1).node_stream(0).integers(0, 1_000_000, size=20)
        b = RandomnessSource(2).node_stream(0).integers(0, 1_000_000, size=20)
        assert not np.array_equal(a, b)

    def test_adversary_and_environment_streams_are_independent_of_nodes(self):
        source = RandomnessSource(7)
        node = source.node_stream(0).integers(0, 1_000_000, size=20)
        adversary = source.adversary_stream().integers(0, 1_000_000, size=20)
        environment = source.environment_stream().integers(0, 1_000_000, size=20)
        assert not np.array_equal(node, adversary)
        assert not np.array_equal(node, environment)
        assert not np.array_equal(adversary, environment)

    def test_spawn_produces_distinct_but_deterministic_sources(self):
        base = RandomnessSource(5)
        child_a = base.spawn(0).node_stream(0).integers(0, 1000, size=5)
        child_a_again = RandomnessSource(5).spawn(0).node_stream(0).integers(0, 1000, size=5)
        child_b = base.spawn(1).node_stream(0).integers(0, 1000, size=5)
        assert np.array_equal(child_a, child_a_again)
        assert not np.array_equal(child_a, child_b)

    def test_invalid_arguments(self):
        with pytest.raises(TypeError):
            RandomnessSource("not-an-int")  # type: ignore[arg-type]
        with pytest.raises(ValueError):
            RandomnessSource(1).node_stream(-1)
        with pytest.raises(ValueError):
            RandomnessSource(1).spawn(-2)


class TestPrimitives:
    def test_fair_sign_values(self, node_rng):
        values = {fair_sign(node_rng) for _ in range(200)}
        assert values == {-1, 1}

    def test_fair_bit_values(self, node_rng):
        values = {fair_bit(node_rng) for _ in range(200)}
        assert values == {0, 1}

    def test_fair_sign_is_roughly_balanced(self, node_rng):
        total = sum(fair_sign(node_rng) for _ in range(4000))
        assert abs(total) < 400  # ~6 standard deviations


class TestInputPatterns:
    def test_split_inputs_halves(self):
        inputs = split_inputs(10)
        assert inputs.count(0) == 5 and inputs.count(1) == 5
        assert inputs == sorted(inputs)

    def test_split_inputs_odd_length(self):
        inputs = split_inputs(7)
        assert len(inputs) == 7
        assert inputs.count(0) == 3 and inputs.count(1) == 4

    def test_unanimous_inputs(self):
        assert unanimous_inputs(5, 1) == [1] * 5
        assert unanimous_inputs(3, 0) == [0] * 3
        with pytest.raises(ValueError):
            unanimous_inputs(3, 2)

    def test_random_inputs_respects_fraction_bounds(self, randomness):
        rng = randomness.environment_stream()
        inputs = random_inputs(500, rng, ones_fraction=0.9)
        assert 350 <= sum(inputs) <= 500
        with pytest.raises(ValueError):
            random_inputs(10, rng, ones_fraction=1.5)
