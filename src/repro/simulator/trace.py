"""Execution traces.

A trace records, per round, the externally observable facts of an execution:
which nodes were corrupted, how many honest nodes had decided, how many had
terminated, how many messages/bits flowed, and (for committee protocols) which
phase and committee were active.  Traces are the raw material for the metrics
layer and for debugging adversary strategies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.simulator.node import HonestNodeRecord


@dataclass(frozen=True)
class RoundRecord:
    """Everything the trace remembers about a single round."""

    round_index: int
    newly_corrupted: tuple[int, ...]
    corrupted_total: int
    honest_decided: int
    honest_terminated: int
    honest_values: tuple[int, ...]
    message_count: int
    bit_count: int
    phase: int | None = None
    annotations: dict[str, object] = field(default_factory=dict, compare=False)


@dataclass
class ExecutionTrace:
    """Chronological record of an execution.

    Attributes:
        records: One :class:`RoundRecord` per simulated round.
        node_snapshots: Final snapshot of every honest node.
    """

    records: list[RoundRecord] = field(default_factory=list)
    node_snapshots: list[HonestNodeRecord] = field(default_factory=list)

    def add(self, record: RoundRecord) -> None:
        """Append a round record."""
        self.records.append(record)

    @property
    def rounds(self) -> int:
        """Number of recorded rounds."""
        return len(self.records)

    def corruption_schedule(self) -> list[tuple[int, int]]:
        """Return ``(round_index, node_id)`` pairs in corruption order."""
        schedule: list[tuple[int, int]] = []
        for record in self.records:
            for node_id in record.newly_corrupted:
                schedule.append((record.round_index, node_id))
        return schedule

    def corruption_counts(self) -> list[int]:
        """Cumulative number of corrupted nodes after each round."""
        return [record.corrupted_total for record in self.records]

    def decided_counts(self) -> list[int]:
        """Number of honest nodes with ``decided=True`` after each round."""
        return [record.honest_decided for record in self.records]

    def first_round_all_decided(self, honest_count: int) -> int | None:
        """First round index after which every honest node had decided, or ``None``."""
        for record in self.records:
            if record.honest_decided >= honest_count:
                return record.round_index
        return None

    def value_distribution(self, round_index: int) -> dict[int, int]:
        """Histogram of honest values after the given round."""
        record = self.records[round_index]
        histogram: dict[int, int] = {}
        for value in record.honest_values:
            histogram[value] = histogram.get(value, 0) + 1
        return histogram

    def summary(self) -> dict[str, object]:
        """Compact dictionary describing the trace (suitable for logging)."""
        if not self.records:
            return {"rounds": 0}
        last = self.records[-1]
        return {
            "rounds": self.rounds,
            "final_corrupted": last.corrupted_total,
            "final_decided": last.honest_decided,
            "final_terminated": last.honest_terminated,
            "total_messages": sum(r.message_count for r in self.records),
            "total_bits": sum(r.bit_count for r in self.records),
        }
