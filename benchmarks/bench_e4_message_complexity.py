"""E4 — message complexity vs t and CONGEST per-edge discipline
(Section 1.2 / Section 4)."""

from __future__ import annotations

from benchmarks.harness import run_and_record
from repro.experiments.e4_message_complexity import run as run_e4


def test_e4_message_complexity(benchmark):
    report = run_and_record(benchmark, run_e4)
    rows = report.rows
    assert rows
    # The paper's protocol never sends meaningfully more messages than
    # Chor-Coan on the same configuration.
    assert all(row["messages_ours"] <= row["messages_chor_coan"] * 1.25 + 1000 for row in rows)
    # Strict CONGEST accounting: zero violations for the committee protocol.
    assert all(row["congest_violations_ours"] == 0 for row in rows)
    # Message counts grow with t (more phases -> more broadcasts).
    assert rows[0]["messages_ours"] <= rows[-1]["messages_ours"]
