"""Schema-versioned JSONL trace export and validation.

A trace file is newline-delimited JSON: a ``trace`` header line first, then
one event per line.  The event vocabulary:

``trace``
    Header: ``{"event": "trace", "schema": 1, "run_id": ..., "meta": {...}}``.
    ``schema`` is :data:`TRACE_SCHEMA_VERSION`; readers reject other versions.

``span``
    One closed span: ``name``, ``seq`` (entry order within its process),
    ``parent`` (enclosing span's ``seq`` or ``null``), ``shard`` (worker
    index, ``null`` in the parent process), ``start_ns`` (offset from the
    tracer's epoch) and ``duration_ns`` on the monotonic clock, plus an
    optional ``meta`` object.

``counter``
    One flushed counter total: ``name`` and integer ``value``.  Counters are
    flushed once at export time; ``vectorized-mp`` child counters fold into
    the parent totals before the flush.

``object_round`` / ``object_summary``
    The object simulator's :class:`~repro.simulator.trace.ExecutionTrace`
    rendered into the same stream: one ``object_round`` per
    :class:`~repro.simulator.trace.RoundRecord` and one ``object_summary``
    carrying :meth:`ExecutionTrace.summary`.

Files are written under :func:`default_traces_dir`
(``benchmarks/results/traces/`` unless ``REPRO_TRACE_DIR`` overrides it) as
``<run_id>.jsonl``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable

from repro.observability.tracer import Tracer

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "default_traces_dir",
    "object_trace_events",
    "read_trace",
    "trace_events",
    "validate_events",
    "write_trace",
]

#: Version stamped into (and required of) every trace header.
TRACE_SCHEMA_VERSION = 1

#: Directory override for exported traces.
DIR_ENV_VAR = "REPRO_TRACE_DIR"

#: The known event vocabulary.
EVENT_TYPES = frozenset(
    {"trace", "span", "counter", "object_round", "object_summary"}
)

#: Required keys (beyond ``event``) per event type.
_REQUIRED_KEYS = {
    "trace": ("schema",),
    "span": ("name", "seq", "parent", "shard", "start_ns", "duration_ns"),
    "counter": ("name", "value"),
    "object_round": ("round", "corrupted_total", "honest_decided"),
    "object_summary": ("rounds",),
}


def default_traces_dir() -> Path:
    """Where exported traces land: ``$REPRO_TRACE_DIR`` or the benchmark dir."""
    override = os.environ.get(DIR_ENV_VAR)
    if override:
        return Path(override)
    return Path("benchmarks") / "results" / "traces"


def trace_events(
    tracer: Tracer, *, run_id: str | None = None, meta: dict[str, Any] | None = None
) -> list[dict[str, Any]]:
    """The tracer's full event stream: header, spans/raw events, counters.

    Span and raw events come out in the deterministic (shard, sequence)
    order of :meth:`Tracer.events`; counter totals flush last, sorted by
    name.
    """
    header: dict[str, Any] = {
        "event": "trace",
        "schema": TRACE_SCHEMA_VERSION,
        "run_id": run_id if run_id is not None else tracer.run_id,
    }
    if meta:
        header["meta"] = meta
    events = [header]
    events.extend(tracer.events())
    for name in sorted(tracer.counters):
        events.append(
            {
                "event": "counter",
                "name": name,
                "value": tracer.counters[name],
                "shard": None,
            }
        )
    return events


def write_trace(
    tracer: Tracer,
    path: str | Path | None = None,
    *,
    run_id: str | None = None,
    meta: dict[str, Any] | None = None,
) -> Path:
    """Export ``tracer`` as a JSONL file and return the path written.

    Without an explicit ``path`` the file is
    ``<default_traces_dir>/<run_id>.jsonl`` (the tracer's own ``run_id`` when
    the argument is omitted).
    """
    events = trace_events(tracer, run_id=run_id, meta=meta)
    if path is None:
        chosen = run_id if run_id is not None else tracer.run_id
        if not chosen:
            raise ValueError("write_trace needs a run_id (or an explicit path)")
        path = default_traces_dir() / f"{chosen}.jsonl"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")
    return path


def read_trace(path: str | Path) -> list[dict[str, Any]]:
    """Load and validate a JSONL trace file."""
    events = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(f"{path}:{line_number}: not JSON: {error}") from None
            events.append(event)
    validate_events(events, source=str(path))
    return events


def validate_events(
    events: Iterable[dict[str, Any]], *, source: str = "trace"
) -> list[dict[str, Any]]:
    """Check an event stream against the schema; raises ``ValueError``.

    Asserts: a header first line with the supported schema version, known
    event types, each event's required keys present, and integer span
    timings/sequence numbers.  Returns the events unchanged on success.
    """
    events = list(events)
    if not events:
        raise ValueError(f"{source}: empty trace")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            raise ValueError(f"{source}: event {index} is not an object")
        kind = event.get("event")
        if kind not in EVENT_TYPES:
            raise ValueError(f"{source}: event {index} has unknown type {kind!r}")
        missing = [key for key in _REQUIRED_KEYS[kind] if key not in event]
        if missing:
            raise ValueError(
                f"{source}: {kind} event {index} is missing keys {missing}"
            )
        if index == 0:
            if kind != "trace":
                raise ValueError(f"{source}: first event must be the trace header")
            if event["schema"] != TRACE_SCHEMA_VERSION:
                raise ValueError(
                    f"{source}: unsupported schema version {event['schema']!r} "
                    f"(supported: {TRACE_SCHEMA_VERSION})"
                )
        elif kind == "trace":
            raise ValueError(f"{source}: duplicate trace header at event {index}")
        if kind == "span":
            for key in ("seq", "start_ns", "duration_ns"):
                if not isinstance(event[key], int):
                    raise ValueError(
                        f"{source}: span event {index} field {key!r} is not an int"
                    )
        if kind == "counter" and not isinstance(event["value"], int):
            raise ValueError(f"{source}: counter event {index} value is not an int")
    return events


def object_trace_events(trace: Any) -> list[dict[str, Any]]:
    """Render an :class:`~repro.simulator.trace.ExecutionTrace` as events.

    One ``object_round`` per :class:`~repro.simulator.trace.RoundRecord`
    followed by one ``object_summary`` built from
    :meth:`ExecutionTrace.summary` — the object simulator's per-round trace
    in the same JSONL schema the batched stack exports.
    """
    events: list[dict[str, Any]] = []
    for record in trace.records:
        events.append(
            {
                "event": "object_round",
                "round": record.round_index,
                "phase": record.phase,
                "newly_corrupted": list(record.newly_corrupted),
                "corrupted_total": record.corrupted_total,
                "honest_decided": record.honest_decided,
                "honest_terminated": record.honest_terminated,
                "messages": record.message_count,
                "bits": record.bit_count,
            }
        )
    events.append({"event": "object_summary", **trace.summary()})
    return events
