"""Tests for the analysis layer: Paley–Zygmund, bound curves and statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.bounds import (
    BoundCurves,
    committee_good_phase_probability,
    crossover_versus_chor_coan,
    example_speedup_at_three_quarters,
    expected_spoilable_phases,
    gap_to_lower_bound,
    message_curves,
    predicted_phases_chor_coan_under_straddle,
    predicted_phases_under_straddle,
)
from repro.analysis.paley_zygmund import (
    coin_success_lower_bound,
    common_coin_bias_bound,
    exact_common_coin_probability,
    paley_zygmund_bound,
    sum_exceeds_probability,
)
from repro.analysis.statistics import (
    geometric_mean,
    loglog_slope,
    mean_confidence_interval,
    success_rate,
)


class TestPaleyZygmund:
    def test_inequality_holds_for_bernoulli_example(self):
        # X ~ Bernoulli(p) scaled: E[X] = p, E[X^2] = p; P(X > theta*p) = p for theta<1.
        p, theta = 0.3, 0.5
        assert paley_zygmund_bound(p, p, theta) <= p + 1e-12

    def test_inequality_monotone_in_theta(self):
        bounds = [paley_zygmund_bound(1.0, 2.0, theta) for theta in (0.0, 0.3, 0.6, 0.9)]
        assert bounds == sorted(bounds, reverse=True)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            paley_zygmund_bound(1.0, 2.0, 1.5)
        with pytest.raises(ValueError):
            paley_zygmund_bound(-1.0, 2.0, 0.5)
        with pytest.raises(ValueError):
            paley_zygmund_bound(1.0, 0.0, 0.5)

    def test_theorem3_constant_is_at_least_one_twelfth(self):
        for n in (16, 64, 256, 1024, 4096):
            assert coin_success_lower_bound(n) >= 1 / 12 - 1e-9

    def test_theorem3_bound_validated_by_monte_carlo(self):
        # P(X > sqrt(n)/2) for the honest-sum X must dominate the PZ bound.
        n = 100
        g = n - int(0.5 * math.sqrt(n))
        rng = np.random.default_rng(0)
        sums = rng.choice([-1, 1], size=(20000, g)).sum(axis=1)
        empirical = float(np.mean(sums > 0.5 * math.sqrt(n)))
        assert empirical >= coin_success_lower_bound(n)

    def test_sum_exceeds_probability_exact_small_case(self):
        # 3 flips: P(S > 1) = P(S = 3) = 1/8.
        assert sum_exceeds_probability(3, 1) == pytest.approx(1 / 8)
        # P(S > 0) = P(S in {1, 3}) = 4/8.
        assert sum_exceeds_probability(3, 0) == pytest.approx(0.5)
        assert sum_exceeds_probability(0, 0) == 0.0
        assert sum_exceeds_probability(4, 10) == 0.0

    def test_exact_common_coin_probability_decreases_with_byzantine(self):
        probs = [exact_common_coin_probability(64, f) for f in (0, 2, 4, 8, 16)]
        assert probs == sorted(probs, reverse=True)
        assert probs[0] > 0.9  # no Byzantine: only a tie can be ambiguous

    def test_exact_common_coin_probability_at_corollary_threshold(self):
        # At f = sqrt(k)/2 the guarantee is a constant bounded away from 0.
        for k in (16, 64, 256):
            f = int(0.5 * math.sqrt(k))
            assert exact_common_coin_probability(k, f) >= 1 / 12

    def test_bias_bound_is_symmetric_interval(self):
        low, high = common_coin_bias_bound(64, 4)
        assert 0 < low < 0.5 < high < 1
        assert low + high == pytest.approx(1.0)

    def test_degenerate_cases(self):
        assert exact_common_coin_probability(4, 4) == 0.0
        with pytest.raises(ValueError):
            exact_common_coin_probability(0, 0)
        with pytest.raises(ValueError):
            sum_exceeds_probability(-1, 0)


class TestBoundCurves:
    def test_curve_ordering_small_t(self):
        curves = BoundCurves.at(4096, 30)
        assert curves.lower_bound <= curves.this_paper + 1e-9
        assert curves.this_paper <= curves.deterministic + 1

    def test_speedup_grows_as_t_shrinks(self):
        n = 1 << 20
        speedups = [BoundCurves.at(n, t).speedup_vs_chor_coan for t in (200000, 20000, 2000)]
        assert speedups == sorted(speedups)

    def test_gap_to_lower_bound_is_polylog_at_sqrt_n(self):
        n = 1 << 20
        t = int(math.sqrt(n))
        gap = gap_to_lower_bound(n, t)
        assert gap <= math.log2(n) ** 2.5

    def test_crossover_value(self):
        n = 4096
        assert crossover_versus_chor_coan(n) == pytest.approx(n / (12.0 * 12.0))

    def test_example_speedup_direction(self):
        ours, chor_coan = example_speedup_at_three_quarters(1 << 40)
        assert ours > 0 and chor_coan > 0

    def test_message_curves_ordering(self):
        curves = message_curves(1 << 14, 64)
        assert curves["this_paper"] <= curves["chor_coan"] + 1e-9
        assert curves["lower_bound_nt"] <= curves["this_paper"]

    def test_good_phase_probability_behaviour(self):
        assert committee_good_phase_probability(64, 0) > committee_good_phase_probability(64, 8)
        assert committee_good_phase_probability(64, 64) == 0.0
        assert committee_good_phase_probability(0, 0) == 0.0

    def test_expected_spoilable_phases_scales_inversely_with_committee_size(self):
        few = expected_spoilable_phases(1024, 100, committee_size=256)
        many = expected_spoilable_phases(1024, 100, committee_size=4)
        assert few < many
        assert expected_spoilable_phases(1024, 0, 16) == 0.0

    def test_straddle_phase_predictions_favor_paper_for_small_t(self):
        n, t = 4096, 40
        ours = predicted_phases_under_straddle(n, t)
        chor_coan = predicted_phases_chor_coan_under_straddle(n, t)
        assert ours < chor_coan


class TestStatistics:
    def test_success_rate_interval_contains_truth(self):
        estimate = success_rate(90, 100)
        assert estimate.rate == pytest.approx(0.9)
        assert estimate.low < 0.9 < estimate.high
        assert estimate.contains(0.9)
        assert not estimate.contains(0.5)

    def test_success_rate_validation(self):
        with pytest.raises(ValueError):
            success_rate(5, 0)
        with pytest.raises(ValueError):
            success_rate(11, 10)

    def test_mean_confidence_interval(self):
        mean, low, high = mean_confidence_interval([2.0, 4.0, 6.0, 8.0])
        assert mean == pytest.approx(5.0)
        assert low < mean < high
        single = mean_confidence_interval([3.0])
        assert single == (3.0, 3.0, 3.0)
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_loglog_slope_recovers_exponents(self):
        xs = [2, 4, 8, 16, 32]
        assert loglog_slope(xs, [x**2 for x in xs]) == pytest.approx(2.0)
        assert loglog_slope(xs, [5 * x for x in xs]) == pytest.approx(1.0)

    def test_loglog_slope_validation(self):
        with pytest.raises(ValueError):
            loglog_slope([1, 2], [1])
        with pytest.raises(ValueError):
            loglog_slope([1], [1])
        with pytest.raises(ValueError):
            loglog_slope([0, 1], [1, 2])
        with pytest.raises(ValueError):
            loglog_slope([2, 2], [1, 2])

    def test_geometric_mean(self):
        assert geometric_mean([1, 4, 16]) == pytest.approx(4.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])
