"""E3 — early termination: rounds as a function of the actual number of
corruptions q (Theorem 2, second clause)."""

from __future__ import annotations

from benchmarks.harness import run_and_record
from repro.experiments.e3_early_termination import run as run_e3


def test_e3_early_termination(benchmark):
    report = run_and_record(benchmark, run_e3)
    rows = report.rows
    assert all(row["agreement_rate"] == 1.0 for row in rows)
    # Rounds must grow with the actual corruption budget q ...
    assert rows[0]["mean_rounds"] <= rows[-1]["mean_rounds"]
    # ... and the q=0 runs terminate essentially immediately.
    assert rows[0]["mean_rounds"] <= 8
    # The adversary never uses more corruptions than its actual budget.
    assert all(row["mean_corrupted"] <= row["q"] for row in rows)
