"""Unit tests for the committee-count formula and complexity predictions."""

from __future__ import annotations

import math

import pytest

from repro.core.parameters import (
    ProtocolParameters,
    Regime,
    crossover_t,
    log2n,
    lower_bound_bar_joseph_ben_or,
    max_tolerable_t,
    predicted_messages,
    predicted_messages_chor_coan,
    predicted_rounds,
    predicted_rounds_chor_coan,
    predicted_rounds_deterministic,
    regime_of,
    validate_n_t,
)
from repro.exceptions import ConfigurationError


class TestValidation:
    def test_rejects_t_at_or_above_n_over_3(self):
        with pytest.raises(ConfigurationError):
            validate_n_t(9, 3)
        validate_n_t(10, 3)  # 3 < 10/3

    def test_rejects_negative_and_empty(self):
        with pytest.raises(ConfigurationError):
            validate_n_t(0, 0)
        with pytest.raises(ConfigurationError):
            validate_n_t(10, -1)

    def test_max_tolerable_t(self):
        assert max_tolerable_t(10) == 3
        assert max_tolerable_t(9) == 2
        assert max_tolerable_t(4) == 1
        assert max_tolerable_t(1) == 0
        assert all(3 * max_tolerable_t(n) < n for n in range(1, 100))


class TestDerive:
    def test_formula_matches_paper_quadratic_branch(self):
        # For large n and sqrt(n) << t << n/log^2 n the quadratic branch
        # alpha * ceil(t^2/n) * log n is the smaller of the two.
        n, t, alpha = 1 << 20, 2000, 4.0
        params = ProtocolParameters.derive(n, t, alpha)
        expected = math.ceil(alpha * math.ceil(t * t / n) * log2n(n))
        assert params.num_phases == expected
        assert params.regime == Regime.QUADRATIC

    def test_formula_matches_paper_linear_branch(self):
        n, t, alpha = 256, 80, 4.0
        params = ProtocolParameters.derive(n, t, alpha)
        expected = math.ceil(min(alpha * math.ceil(t * t / n) * log2n(n), 3 * alpha * t / log2n(n)))
        assert params.num_phases == expected
        assert params.regime == Regime.LINEAR

    def test_zero_faults_degenerates_to_one_phase(self):
        params = ProtocolParameters.derive(64, 0)
        assert params.num_phases == 1
        assert params.committee_size == 64

    def test_committee_size_times_count_covers_n(self):
        for n, t in [(64, 5), (128, 20), (1000, 111), (4096, 1000)]:
            params = ProtocolParameters.derive(n, t)
            assert params.committee_size * params.num_committees >= n
            assert 1 <= params.committee_size <= n

    def test_phase_count_clamped_to_n(self):
        params = ProtocolParameters.derive(10, 3, alpha=100.0)
        assert params.num_phases <= 10

    def test_invalid_alpha(self):
        with pytest.raises(ConfigurationError):
            ProtocolParameters.derive(16, 2, alpha=0.0)

    def test_committee_range_and_schedule(self):
        params = ProtocolParameters.derive(100, 30)
        first = params.committee_range(0)
        assert first.start == 0 and len(first) == params.committee_size
        assert params.committee_for_phase(1) == 0
        # The schedule cycles after num_committees phases.
        assert params.committee_for_phase(params.num_committees + 1) == 0
        with pytest.raises(ConfigurationError):
            params.committee_range(params.num_committees)
        with pytest.raises(ConfigurationError):
            params.committee_for_phase(0)

    def test_summary_contains_key_fields(self):
        summary = ProtocolParameters.derive(64, 10).summary()
        assert summary["n"] == 64 and summary["t"] == 10
        assert summary["regime"] in ("quadratic", "linear")
        assert summary["total_rounds"] >= 2 * summary["num_phases"]


class TestPredictions:
    def test_round_bound_takes_the_min_of_both_branches(self):
        n = 1 << 14
        small_t, large_t = 8, n // 4
        assert predicted_rounds(n, small_t) < predicted_rounds_chor_coan(n, small_t)
        ratio = predicted_rounds(n, large_t) / predicted_rounds_chor_coan(n, large_t)
        assert ratio <= 1.0 + 1e-9

    def test_paper_example_t_equals_n_to_three_quarters(self):
        # Paper, Section 1.2: at t = n^0.75 our bound ~ n^0.5 log n beats
        # Chor-Coan's ~ n^0.75 / log n.  The asymptotics require n^0.25 to
        # dominate log^2 n, hence the very large (purely analytic) n.
        n = 1 << 60
        t = int(n**0.75)
        assert predicted_rounds(n, t) < predicted_rounds_chor_coan(n, t)

    def test_lower_bound_below_upper_bound(self):
        for n, t in [(1024, 32), (4096, 64), (1 << 14, 100)]:
            assert lower_bound_bar_joseph_ben_or(n, t) <= predicted_rounds(n, t) + 1e-9

    def test_deterministic_bound(self):
        assert predicted_rounds_deterministic(10) == 11.0

    def test_message_bounds_ordering(self):
        n, t = 1 << 14, 50
        assert predicted_messages(n, t) <= predicted_messages_chor_coan(n, t)

    def test_regime_detection_matches_crossover(self):
        n = 4096
        threshold = crossover_t(n)
        assert regime_of(n, max(1, int(threshold) - 1)) == Regime.QUADRATIC
        assert regime_of(n, min((n - 1) // 3, int(threshold) + 10)) == Regime.LINEAR

    def test_trivial_t_values(self):
        assert predicted_rounds(100, 0) == 1.0
        assert predicted_rounds_chor_coan(100, 0) == 1.0
        assert lower_bound_bar_joseph_ben_or(100, 0) == 1.0
