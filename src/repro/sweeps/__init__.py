"""Sweep orchestration subsystem.

The layer above :func:`repro.engine.run_sweep`: declarative scenario grids
(:mod:`repro.sweeps.spec`), a persistent content-addressed results store with
caching and resume (:mod:`repro.sweeps.store`), a resumable executor with
trial-range sharding (:mod:`repro.sweeps.executor`) and a named scenario
library (:mod:`repro.sweeps.library`).  The ``repro sweep`` CLI subcommands
are thin wrappers over these four modules; see ``docs/sweeps.md`` for the
spec format and the caching/resume contract.
"""

from repro.sweeps.adaptive import (
    AdaptiveRunReport,
    BatchOutcome,
    PointEstimate,
    PrecisionTargets,
    adaptive_keys,
    adaptive_plan_table,
    adaptive_report_rows,
    adaptive_status,
    estimate_point,
    markdown_adaptive_plan,
    resolve_targets,
    run_adaptive,
)
from repro.sweeps.executor import (
    PointOutcome,
    SweepRunReport,
    report_rows,
    run_spec,
    spec_keys,
    status_spec,
)
from repro.sweeps.library import SWEEP_LIBRARY, get_spec, markdown_library_table
from repro.sweeps.spec import (
    SEED_POLICIES,
    SPEC_SCHEMA_VERSION,
    T_SPECS,
    SweepPoint,
    SweepSpec,
    canonical_json,
    expand_rows,
    resolve_t,
    spec_from_file,
)
from repro.sweeps.store import (
    STORE_SCHEMA_VERSION,
    ResultsStore,
    adaptive_key,
    adaptive_record,
    default_store_root,
    engine_family,
    experiment_key,
    point_key,
    result_from_record,
    sweep_record,
)

__all__ = [
    "SEED_POLICIES",
    "SPEC_SCHEMA_VERSION",
    "STORE_SCHEMA_VERSION",
    "SWEEP_LIBRARY",
    "T_SPECS",
    "AdaptiveRunReport",
    "BatchOutcome",
    "PointEstimate",
    "PointOutcome",
    "PrecisionTargets",
    "ResultsStore",
    "SweepPoint",
    "SweepRunReport",
    "SweepSpec",
    "adaptive_key",
    "adaptive_keys",
    "adaptive_plan_table",
    "adaptive_record",
    "adaptive_report_rows",
    "adaptive_status",
    "canonical_json",
    "default_store_root",
    "engine_family",
    "estimate_point",
    "expand_rows",
    "experiment_key",
    "get_spec",
    "markdown_adaptive_plan",
    "markdown_library_table",
    "point_key",
    "resolve_targets",
    "run_adaptive",
    "report_rows",
    "resolve_t",
    "result_from_record",
    "run_spec",
    "spec_from_file",
    "spec_keys",
    "status_spec",
    "sweep_record",
]
