"""Unified sweep execution — one entry point, four engines.

Every multi-trial experiment in the repository is a *sweep*: the same
``(n, t, protocol, adversary, inputs)`` configuration repeated over a seed
range.  Four executors can run a sweep:

``vectorized``
    A batched NumPy kernel: all trials execute simultaneously on
    ``(trials, n)`` arrays.  The committee-family protocols run on the engine
    of :mod:`repro.simulator.vectorized`; every other baseline protocol has a
    dedicated kernel in :mod:`repro.baselines.kernels`.  Which
    ``(protocol, adversary)`` pairs qualify is recorded in the
    :data:`PROTOCOL_KERNELS` capability registry; qualifying sweeps run orders
    of magnitude faster than the object simulator and are the only practical
    option at thousand-node scale.

``object``
    The faithful per-message object simulator
    (:mod:`repro.simulator.scheduler`), one seeded run per trial.  Supports
    every protocol and adversary.

``vectorized-mp``
    The batched kernel sharded over a ``ProcessPoolExecutor`` by trial range:
    the ``trials`` counter range is split into contiguous per-worker
    sub-batches, each worker runs its range on the sweep's global Philox keys
    (trial ``k`` always uses key ``(base_seed, k)`` — the kernels'
    ``trial_offset`` contract) and the partial aggregates are merged exactly
    with :meth:`repro.core.runner.TrialsResult.merge`.  Bit-identical to
    ``vectorized``; only wall-clock time changes.

``object-mp``
    The object simulator fanned out over a ``ProcessPoolExecutor`` by seed
    range.  Bit-identical to ``object`` (trial ``k`` always uses master seed
    ``base_seed + k``); only wall-clock time changes.

:func:`run_sweep` auto-dispatches between them (``engine="auto"``) or obeys an
explicit choice.  The decision logic is exposed separately as
:func:`select_engine` so callers (and the README's dispatch table) can see
which configurations take the fast path.  :func:`run_coin_sweep` provides the
same dispatch for the standalone common-coin Monte-Carlo (experiment E2).
"""

from __future__ import annotations

import os
import shutil
import tempfile
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any

import numpy as np

from repro.adversary.kernels.capabilities import derive_behaviours
from repro.baselines.kernels import (
    BASELINE_KERNELS,
    CoinTrialsResult,
    KernelSpec,
    run_coin_trials,
)
from repro.core.parameters import ProtocolParameters
from repro.core.runner import (
    ADVERSARIES,
    PROTOCOLS,
    AgreementExperiment,
    TrialsResult,
    TrialSummary,
    run_single_trial,
)
from repro.exceptions import ConfigurationError, SimulationError
from repro.observability.export import read_trace, write_trace
from repro.observability.tracer import Tracer, activate, current_tracer
from repro.simulator.vectorized import COMMITTEE_ENGINE_HOOKS, run_vectorized_trials

#: Engine names accepted by :func:`run_sweep`.
ENGINES = ("auto", "vectorized", "vectorized-mp", "object", "object-mp")

#: Engine name -> result family.  Engines within one family are bit-identical
#: (the parallel variants only change wall-clock time), which is why the
#: sweep results store (:mod:`repro.sweeps.store`) keys cached results by
#: family rather than by concrete engine.
ENGINE_FAMILIES = {
    "vectorized": "vectorized",
    "vectorized-mp": "vectorized",
    "object": "object",
    "object-mp": "object",
}

#: Object-simulator adversary names -> committee-engine behaviours, derived
#: from the committee engine's full hook surface (the vectorised names
#: themselves are accepted as aliases so existing callers of
#: ``run_vectorized_trials`` can migrate without renaming).  Every registered
#: adversary strategy has a committee-family fast path.
ADVERSARY_FAST_PATH = derive_behaviours(COMMITTEE_ENGINE_HOOKS)

#: The committee engine's bit-identity guarantee is against its own
#: single-trial vectorised path (same (seed, k) Philox keys), not the object
#: simulator — the object nodes draw committee shares from per-node streams —
#: so every committee fast-path pair is recorded as statistically validated.
_COMMITTEE_EXACT: frozenset[str] = frozenset()


def _committee_spec(protocol: str) -> KernelSpec:
    """Capability record for one committee-family protocol."""
    return KernelSpec(
        name="committee",
        run_trials=partial(run_vectorized_trials, protocol=protocol),
        hooks=COMMITTEE_ENGINE_HOOKS,
        exact=_COMMITTEE_EXACT,
        supports_params=True,
        supports_topology=True,
        supports_backend=True,
        protocol_kwargs=frozenset({"alpha"}),
    )


#: protocol -> kernel capability record: which adversaries (and options) have
#: a vectorised fast path.  Committee-family entries point at the committee
#: engine; the baselines bring their own kernels.
PROTOCOL_KERNELS: dict[str, KernelSpec] = {
    **{
        protocol: _committee_spec(protocol)
        for protocol in (
            "committee-ba",
            "committee-ba-las-vegas",
            "chor-coan",
            "chor-coan-las-vegas",
        )
    },
    **BASELINE_KERNELS,
}

#: Protocols with a vectorised implementation (for some adversaries).
VECTORIZED_PROTOCOLS = tuple(sorted(PROTOCOL_KERNELS))

#: Below this much estimated work (``trials * n^2`` message deliveries) the
#: process-pool startup cost outweighs the parallelism.
_MIN_WORK_FOR_PROCESSES = 5_000_000

#: Seed-range chunks handed out per worker (keeps the pool load-balanced when
#: per-seed run times vary).
_CHUNKS_PER_WORKER = 4


@dataclass
class SweepResult(TrialsResult):
    """A :class:`TrialsResult` that also records which engine produced it."""

    engine: str = "object"


def vectorizable(
    protocol: str,
    adversary: str,
    *,
    max_rounds: int | None = None,
    topology: str = "clique",
    loss: float = 0.0,
    protocol_kwargs: dict[str, Any] | None = None,
    adversary_kwargs: dict[str, Any] | None = None,
) -> bool:
    """True when the configuration has a modelled vectorised equivalent.

    The decision is a :data:`PROTOCOL_KERNELS` lookup: the pair must have a
    registered fault behaviour, any custom round cap must be honoured by the
    kernel, an off-clique topology or positive message loss requires the
    kernel's masked communication planes (``supports_topology``), protocol
    kwargs must be within the kernel's modelled set, and any adversary kwargs
    (e.g. explicit target lists or per-phase spend limits) force the object
    path.
    """
    spec = PROTOCOL_KERNELS.get(protocol)
    if spec is None:
        return False
    if adversary not in spec.behaviours:
        return False
    if max_rounds is not None and not spec.supports_max_rounds:
        return False
    if (topology != "clique" or loss > 0.0) and not spec.supports_topology:
        return False
    if adversary_kwargs:
        return False
    if protocol_kwargs and set(protocol_kwargs) - set(spec.protocol_kwargs):
        return False
    return True


def select_engine(
    protocol: str,
    adversary: str,
    *,
    engine: str = "auto",
    trials: int = 10,
    n: int = 0,
    workers: int | None = None,
    max_rounds: int | None = None,
    topology: str = "clique",
    loss: float = 0.0,
    protocol_kwargs: dict[str, Any] | None = None,
    adversary_kwargs: dict[str, Any] | None = None,
) -> str:
    """Resolve ``engine="auto"`` to a concrete engine name.

    Raises:
        ConfigurationError: For unknown engine names, or when
            ``engine="vectorized"`` is forced for a configuration no kernel
            models.
    """
    if engine not in ENGINES:
        raise ConfigurationError(f"unknown engine {engine!r}; available: {ENGINES}")
    fast = vectorizable(
        protocol,
        adversary,
        max_rounds=max_rounds,
        topology=topology,
        loss=loss,
        protocol_kwargs=protocol_kwargs,
        adversary_kwargs=adversary_kwargs,
    )
    if engine in ("vectorized", "vectorized-mp"):
        if not fast:
            raise ConfigurationError(
                f"no vectorized kernel for protocol={protocol!r} "
                f"adversary={adversary!r} with the given options; "
                "use engine='object' (or 'auto')"
            )
        return engine
    if engine == "auto":
        if fast:
            # An explicit workers= under auto is an explicit request for the
            # sharded pool (results are bit-identical either way).
            if workers is not None and workers > 1 and trials > 1:
                return "vectorized-mp"
            return "vectorized"
        if workers is not None:
            return "object-mp" if workers > 1 else "object"
        # Escalate to the process pool only when the sweep is big enough for
        # the pool startup to pay off.
        effective = os.cpu_count() or 1
        if effective > 1 and trials > 1 and trials * n * n >= _MIN_WORK_FOR_PROCESSES:
            return "object-mp"
        return "object"
    # Explicit "object" / "object-mp" choices are honored verbatim.
    return engine


def _seed_chunks(base_seed: int, trials: int, chunks: int) -> list[list[int]]:
    """Split the seed range into at most ``chunks`` contiguous pieces."""
    seeds = [base_seed + k for k in range(trials)]
    size = max(1, -(-len(seeds) // max(1, chunks)))
    return [seeds[i : i + size] for i in range(0, len(seeds), size)]


def _trials_chunk(payload: tuple[AgreementExperiment, list[int]]) -> list[TrialSummary]:
    """Worker entry point: run one contiguous seed range serially."""
    experiment, seeds = payload
    return [run_single_trial(experiment, seed) for seed in seeds]


def _run_object_sweep(
    experiment: AgreementExperiment,
    trials: int,
    base_seed: int,
    workers: int | None,
    parallel: bool,
) -> list[TrialSummary]:
    """Object-simulator sweep, serial or fanned out over processes.

    The parallel path is bit-identical to the serial one: seeds are assigned
    as ``base_seed + k`` either way and results are re-assembled in seed
    order.
    """
    if not parallel or trials < 2:
        return [run_single_trial(experiment, base_seed + k) for k in range(trials)]
    pool_size = workers if workers is not None else (os.cpu_count() or 1)
    pool_size = max(1, min(pool_size, trials))
    chunks = _seed_chunks(base_seed, trials, pool_size * _CHUNKS_PER_WORKER)
    with ProcessPoolExecutor(max_workers=pool_size) as pool:
        parts = list(pool.map(_trials_chunk, [(experiment, chunk) for chunk in chunks]))
    return [summary for part in parts for summary in part]


def _run_vectorized_sweep(
    experiment: AgreementExperiment,
    trials: int,
    base_seed: int,
    params: ProtocolParameters | None,
    trial_offset: int = 0,
    backend: str | None = None,
) -> list[TrialSummary]:
    """Batched kernel sweep, summarised in the object-sweep format.

    Trial ``k`` of the call uses the counter-based Philox key
    ``(base_seed, trial_offset + k)``; the recorded per-trial ``seed`` is the
    global key counter ``trial_offset + k``, matching
    :func:`repro.simulator.vectorized.run_vectorized_trials`.
    """
    spec = PROTOCOL_KERNELS[experiment.protocol]
    kwargs: dict[str, Any] = {
        key: value
        for key, value in experiment.protocol_kwargs.items()
        if key in spec.protocol_kwargs
    }
    if spec.supports_params:
        kwargs["params"] = params
        if experiment.alpha is not None:
            kwargs["alpha"] = experiment.alpha
        else:
            kwargs.setdefault("alpha", 4.0)
    if spec.supports_max_rounds and experiment.max_rounds is not None:
        kwargs["max_rounds"] = experiment.max_rounds
    # Backends are bit-identical, so the choice is pure execution policy:
    # it never reaches the sweep-store keys, and kernels without plane state
    # (closed-form tallies) simply ignore it by not receiving it.
    if spec.supports_backend and backend is not None:
        kwargs["backend"] = backend
    # The clique/loss-free default passes *no* masking kwargs, keeping the
    # historical code path (and its results) bit for bit.
    if experiment.topology != "clique" or experiment.loss > 0.0:
        from repro.topology import build_topology

        if experiment.topology != "clique":
            kwargs["adjacency"] = build_topology(experiment.topology, experiment.n)
        kwargs["loss"] = experiment.loss
    aggregate = spec.run_trials(
        experiment.n,
        experiment.t,
        adversary=spec.behaviours[experiment.adversary],
        inputs=experiment.inputs,
        trials=trials,
        seed=base_seed,
        trial_offset=trial_offset,
        **kwargs,
    )
    if not experiment.allow_timeout and any(r.timed_out for r in aggregate.results):
        raise SimulationError(
            f"{experiment.protocol} sweep exceeded its round cap; "
            "pass allow_timeout=True to accept censored trials"
        )
    return [
        TrialSummary(
            seed=trial_offset + k,
            rounds=result.rounds,
            phases=result.phases,
            agreement=result.agreement,
            validity=result.validity,
            decision=result.decision,
            messages=result.messages,
            bits=result.bits,
            corrupted=result.corrupted,
            timed_out=result.timed_out,
        )
        for k, result in enumerate(aggregate.results)
    ]


def _vectorized_shard(
    payload: tuple[
        AgreementExperiment,
        int,
        int,
        ProtocolParameters | None,
        int,
        str | None,
        tuple[int, str] | None,
    ],
) -> list[TrialSummary]:
    """Worker entry point: one contiguous trial range of a sharded sweep.

    When the parent is tracing, the payload carries a ``(shard_index, path)``
    child-trace assignment: the worker runs under its own shard-tagged
    :class:`Tracer` and exports it to ``path`` for the parent to merge
    (tracers are per process, never inherited through the pool).
    """
    experiment, count, base_seed, params, trial_offset, backend, trace_spec = payload
    if trace_spec is None:
        return _run_vectorized_sweep(
            experiment, count, base_seed, params, trial_offset, backend
        )
    shard_index, trace_path = trace_spec
    tracer = Tracer(run_id=f"shard-{shard_index}", shard=shard_index)
    with activate(tracer):
        summaries = _run_vectorized_sweep(
            experiment, count, base_seed, params, trial_offset, backend
        )
    write_trace(tracer, trace_path)
    return summaries


def _run_vectorized_sharded(
    experiment: AgreementExperiment,
    trials: int,
    base_seed: int,
    params: ProtocolParameters | None,
    workers: int | None,
    backend: str | None = None,
    trial_offset: int = 0,
) -> list[TrialSummary]:
    """The batched kernel sweep sharded over processes by trial range.

    The trial counter range ``[trial_offset, trial_offset + trials)`` is
    split into contiguous sub-batches; each worker runs its sub-batch with
    ``trial_offset`` set to the range start, so every trial draws from the
    same ``(base_seed, k)`` Philox key it would use in the single-process
    batch.  Partial aggregates are merged in range order via
    :meth:`TrialsResult.merge`, which makes the sharded sweep bit-identical
    to ``engine="vectorized"``.
    """
    pool_size = workers if workers is not None else (os.cpu_count() or 1)
    pool_size = max(1, min(pool_size, trials))
    if pool_size == 1:
        return _run_vectorized_sweep(
            experiment, trials, base_seed, params, trial_offset, backend
        )
    tracer = current_tracer()
    child_dir = (
        tempfile.mkdtemp(prefix="repro-trace-shards-") if tracer.enabled else None
    )
    size = -(-trials // pool_size)
    shards = []
    for shard_index, start in enumerate(range(0, trials, size)):
        trace_spec = (
            None
            if child_dir is None
            else (
                shard_index,
                os.path.join(child_dir, f"shard-{shard_index:03d}.jsonl"),
            )
        )
        shards.append(
            (
                experiment, min(size, trials - start), base_seed, params,
                trial_offset + start, backend, trace_spec,
            )
        )
    try:
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            parts = list(pool.map(_vectorized_shard, shards))
        if child_dir is not None:
            # Merge the child traces in shard order; each child's events keep
            # their own sequence numbers, so the merged trace orders
            # deterministically by (shard, sequence) regardless of worker
            # scheduling.
            for payload in shards:
                trace_spec = payload[6]
                if trace_spec is not None and os.path.exists(trace_spec[1]):
                    tracer.absorb(read_trace(trace_spec[1]), shard=trace_spec[0])
    finally:
        if child_dir is not None:
            shutil.rmtree(child_dir, ignore_errors=True)
    merged = TrialsResult.merge(
        [TrialsResult(experiment=experiment, trials=part) for part in parts]
    )
    return merged.trials


def run_sweep(
    n: int | None = None,
    t: int | None = None,
    *,
    experiment: AgreementExperiment | None = None,
    protocol: str = "committee-ba",
    adversary: str = "coin-attack",
    inputs: str = "split",
    trials: int = 10,
    base_seed: int = 0,
    alpha: float | None = None,
    engine: str = "auto",
    workers: int | None = None,
    params: ProtocolParameters | None = None,
    max_rounds: int | None = None,
    allow_timeout: bool = False,
    topology: str = "clique",
    loss: float = 0.0,
    backend: str | None = None,
    trial_offset: int = 0,
    protocol_kwargs: dict[str, Any] | None = None,
    adversary_kwargs: dict[str, Any] | None = None,
) -> SweepResult:
    """Run a multi-trial sweep on the most appropriate engine.

    Either pass an :class:`AgreementExperiment` via ``experiment`` or describe
    the configuration with ``n``/``t`` and the keyword fields.

    Args:
        engine: ``"auto"`` (default) picks the batched vectorised kernel
            whenever :data:`PROTOCOL_KERNELS` registers one for the
            ``(protocol, adversary)`` pair and otherwise falls back to the
            object simulator, escalating to a multiprocessing executor when
            ``workers > 1`` is requested (trial-range sharding of the batched
            kernel) or the object sweep is large (seed-range fan-out);
            ``"vectorized"`` / ``"vectorized-mp"`` / ``"object"`` /
            ``"object-mp"`` force a path (``"object"`` never spawns
            processes).
        workers: Process count for the sharded executors (``None`` = one
            per CPU).  Results never depend on it.
        params: Committee-geometry override for the committee-family kernels
            (used by E3 to decouple the declared ``t`` from the attack
            budget).
        trials: Number of independent trials; trial ``k`` uses master seed
            ``base_seed + k`` (object engines) or Philox key
            ``(base_seed, k)`` (vectorised kernels).
        trial_offset: Start of the call's trial-counter range (default 0).
            Trial ``k`` of the call uses the *global* counter
            ``trial_offset + k`` — master seed ``base_seed + trial_offset +
            k`` on the object engines, Philox key ``(base_seed, trial_offset
            + k)`` on the vectorised kernels — so concatenating batches run
            at consecutive offsets is bit-identical to one unsplit sweep.
            This is the contract the sharded and adaptive executors build on.
        backend: Plane-backend selection for the vectorised kernels (a
            :func:`repro.simulator.planes.available_backends` name; ``None``
            defers to ``$REPRO_PLANE_BACKEND`` then ``numpy``).  Backends
            are bit-identical, so results — and sweep-store cache keys —
            never depend on it; the object engines and closed-form kernels
            have no planes and ignore it.

    Returns:
        A :class:`SweepResult` whose ``trials`` list and aggregate properties
        match :func:`repro.core.runner.run_trials`, with ``engine`` recording
        the executor actually used.
    """
    if trials < 1:
        raise ConfigurationError(f"num_trials must be positive, got {trials}")
    if trial_offset < 0:
        raise ConfigurationError(f"trial_offset must be >= 0, got {trial_offset}")
    if experiment is None:
        if n is None or t is None:
            raise ConfigurationError("run_sweep needs either (n, t) or experiment=")
        experiment = AgreementExperiment(
            n=n,
            t=t,
            protocol=protocol,
            adversary=adversary,
            inputs=inputs,
            alpha=alpha,
            max_rounds=max_rounds,
            allow_timeout=allow_timeout,
            topology=topology,
            loss=loss,
            protocol_kwargs=dict(protocol_kwargs or {}),
            adversary_kwargs=dict(adversary_kwargs or {}),
        )
    elif n is not None or t is not None:
        raise ConfigurationError("pass either (n, t) or experiment=, not both")

    tracer = current_tracer()
    with tracer.span(
        "dispatch.select_engine",
        protocol=experiment.protocol,
        adversary=experiment.adversary,
        requested=engine,
    ):
        chosen = select_engine(
            experiment.protocol,
            experiment.adversary,
            engine=engine,
            trials=trials,
            n=experiment.n,
            workers=workers,
            max_rounds=experiment.max_rounds,
            topology=experiment.topology,
            loss=experiment.loss,
            protocol_kwargs=experiment.protocol_kwargs,
            adversary_kwargs=experiment.adversary_kwargs,
        )
    if params is not None and (
        chosen not in ("vectorized", "vectorized-mp")
        or not PROTOCOL_KERNELS[experiment.protocol].supports_params
    ):
        raise ConfigurationError(
            "a committee-geometry override (params=) requires a vectorized "
            "committee-family kernel"
        )

    tracer.count(
        "dispatch.kernel_path"
        if chosen in ("vectorized", "vectorized-mp")
        else "dispatch.object_path"
    )
    with tracer.span(
        f"sweep.{chosen}",
        protocol=experiment.protocol,
        adversary=experiment.adversary,
        n=experiment.n,
        trials=trials,
    ):
        if chosen == "vectorized":
            summaries = _run_vectorized_sweep(
                experiment, trials, base_seed, params, trial_offset, backend
            )
        elif chosen == "vectorized-mp":
            summaries = _run_vectorized_sharded(
                experiment, trials, base_seed, params, workers, backend, trial_offset
            )
        else:
            # The object engines' global counter is the master seed itself:
            # trial k of the call runs on seed base_seed + trial_offset + k.
            summaries = _run_object_sweep(
                experiment, trials, base_seed + trial_offset, workers,
                parallel=chosen == "object-mp",
            )
    return SweepResult(experiment=experiment, trials=summaries, engine=chosen)


# ----------------------------------------------------------------------
# Common-coin Monte-Carlo dispatch (experiment E2)
# ----------------------------------------------------------------------
def run_coin_sweep(
    n: int,
    budget: int,
    *,
    trials: int = 100,
    base_seed: int = 0,
    engine: str = "auto",
) -> CoinTrialsResult:
    """Monte-Carlo sweep of the standalone common coin under the straddle.

    ``engine="auto"``/``"vectorized"`` runs the batched kernel
    (:func:`repro.baselines.kernels.run_coin_trials`): the whole
    ``(trials, n)`` flip plane is drawn at once and every trial's outcome is
    evaluated vectorised.  ``engine="object"`` repeats
    :func:`repro.core.common_coin.run_common_coin` with the full scheduler and
    a live :class:`~repro.adversary.strategies.coin_attack.CoinAttackAdversary`
    over seeds ``base_seed + k`` — the serial loop experiment E2 originally
    shipped, kept for cross-validation.  The two draw different randomness, so
    they agree statistically, not bit-for-bit.
    """
    if engine in ("auto", "vectorized"):
        return run_coin_trials(n, budget, trials=trials, seed=base_seed)
    if engine != "object":
        raise ConfigurationError(
            f"unknown coin-sweep engine {engine!r}; "
            "available: ('auto', 'vectorized', 'object')"
        )
    from repro.adversary.strategies.coin_attack import CoinAttackAdversary
    from repro.core.common_coin import run_common_coin

    common = np.zeros(trials, dtype=bool)
    values = np.zeros(trials, dtype=np.int8)
    for k in range(trials):
        outcome = run_common_coin(n, CoinAttackAdversary(budget), seed=base_seed + k)
        common[k] = outcome.common
        values[k] = outcome.value or 0
    return CoinTrialsResult(
        n=n, budget=budget, trials=trials, common=common, values=values, engine="object"
    )


# ----------------------------------------------------------------------
# Introspection tables (README / `python -m repro engines`)
# ----------------------------------------------------------------------
def dispatch_table() -> list[dict[str, str]]:
    """One row per protocol × adversary pair: which engine ``auto`` picks.

    Rendered in the README and by ``python -m repro engines``.  ``kernel``
    names the batched kernel serving the fast path and ``validation`` records
    whether that pair is bit-identical to the object simulator or
    statistically cross-validated.
    """
    rows = []
    for protocol in sorted(PROTOCOLS):
        spec = PROTOCOL_KERNELS.get(protocol)
        for adversary in sorted(ADVERSARIES):
            fast = vectorizable(protocol, adversary)
            if fast and spec:
                if adversary in spec.inapplicable:
                    validation = "exact (no-op)"
                elif adversary in spec.exact:
                    validation = "exact"
                else:
                    validation = "statistical"
            else:
                validation = "-"
            rows.append(
                {
                    "protocol": protocol,
                    "adversary": adversary,
                    "auto engine": "vectorized" if fast else "object",
                    "kernel": spec.name if fast and spec else "-",
                    "fast-path behaviour": spec.behaviours[adversary] if fast and spec else "-",
                    "validation": validation,
                }
            )
    return rows


def kernel_support_table() -> list[dict[str, str]]:
    """One row per protocol: its kernel and the adversaries it vectorises.

    ``inapplicable`` lists — explicitly — the strategies with no lever on the
    protocol (their object implementations provably no-op; the fast path runs
    the exact failure-free behaviour for them), and ``object only`` the pairs
    whose lever the kernels do not model.
    """
    rows = []
    for protocol in sorted(PROTOCOLS):
        spec = PROTOCOL_KERNELS.get(protocol)
        if spec is None:
            rows.append(
                {
                    "protocol": protocol,
                    "kernel": "-",
                    "vectorized adversaries": "-",
                    "inapplicable": "-",
                    "object only": "-",
                    "max_rounds": "-",
                    "plane backend": "-",
                }
            )
            continue
        inapplicable = sorted(spec.inapplicable)
        supported = sorted(
            name
            for name in spec.behaviours
            if name in ADVERSARIES and name not in spec.inapplicable
        )
        unmodelled = sorted(
            name for name in ADVERSARIES if name not in spec.behaviours
        )
        rows.append(
            {
                "protocol": protocol,
                "kernel": spec.name,
                "vectorized adversaries": ", ".join(supported),
                "inapplicable": ", ".join(inapplicable) if inapplicable else "-",
                "object only": ", ".join(unmodelled) if unmodelled else "-",
                "max_rounds": "yes" if spec.supports_max_rounds else "object only",
                "topology/loss": "masked" if spec.supports_topology else "object only",
                # Deliberately backend-*kind*, not the runtime registry: the
                # docs embed this table byte-for-byte, and optional
                # accelerator backends must not cause drift where they
                # happen to be importable.
                "plane backend": (
                    "selectable" if spec.supports_backend else "numpy-bool"
                ),
            }
        )
    return rows


#: Off-clique validation tier per protocol, shown in the topology-support
#: table.  Deterministic protocols with replayable randomness stay *exact*
#: off-clique at ``loss == 0`` for the randomness-free behaviours; everything
#: else on the masked planes is statistical (the kernels and the object
#: nodes consume different streams); protocols without masked planes run
#: off-clique configurations on the object simulator only.
_TOPOLOGY_VALIDATION = {
    "phase-king": "exact (null/silent, loss=0); statistical otherwise",
    "rabin": "exact (null/silent, loss=0); statistical otherwise",
    "ben-or": "statistical",
}


def topology_support_table() -> list[dict[str, str]]:
    """One row per protocol: how off-clique / lossy configurations execute.

    ``off-clique engine`` reports where a ``topology != "clique"`` or
    ``loss > 0`` sweep runs (the masked vectorised planes, or the object
    simulator's per-round drop sets), and ``off-clique validation`` the
    cross-validation tier the test suite holds that path to.
    """
    rows = []
    for protocol in sorted(PROTOCOLS):
        spec = PROTOCOL_KERNELS.get(protocol)
        if spec is not None and spec.supports_topology:
            engine_name = "vectorized (masked planes)"
            validation = _TOPOLOGY_VALIDATION.get(protocol, "statistical")
        else:
            engine_name = "object (per-round drops)"
            validation = "object only"
        rows.append(
            {
                "protocol": protocol,
                "kernel": spec.name if spec is not None else "-",
                "off-clique engine": engine_name,
                "off-clique validation": validation,
            }
        )
    return rows


def markdown_engine_tables() -> dict[str, str]:
    """The introspection tables as marked, embeddable markdown blocks.

    Returns one block per table name (``"kernel-support"``, ``"dispatch"``,
    ``"topology-support"``): a GitHub-flavoured markdown table wrapped in
    ``<!-- engines:<name>:begin/end -->`` marker comments.  ``python -m repro
    engines --markdown`` prints these blocks verbatim; the README and
    ``docs/`` embed them between the same markers, and
    ``tests/test_docs.py`` asserts every embedded copy is byte-identical to
    this function's output — so the documented tables can never drift from
    the live :data:`PROTOCOL_KERNELS` registry.
    """
    from repro.metrics.reporting import format_markdown_table

    tables = {
        "kernel-support": format_markdown_table(kernel_support_table()),
        "dispatch": format_markdown_table(dispatch_table()),
        "topology-support": format_markdown_table(topology_support_table()),
    }
    return {
        name: (
            f"<!-- engines:{name}:begin -->\n"
            f"{table}\n"
            f"<!-- engines:{name}:end -->"
        )
        for name, table in tables.items()
    }


__all__ = [
    "ADVERSARY_FAST_PATH",
    "ENGINE_FAMILIES",
    "ENGINES",
    "PROTOCOL_KERNELS",
    "SweepResult",
    "VECTORIZED_PROTOCOLS",
    "dispatch_table",
    "kernel_support_table",
    "markdown_engine_tables",
    "run_coin_sweep",
    "run_sweep",
    "select_engine",
    "topology_support_table",
    "vectorizable",
]
