"""Batched NumPy kernels for the baseline protocols.

PR 1 gave the paper's committee-BA family a batched multi-trial engine
(:mod:`repro.simulator.vectorized`); this package extends the same treatment
to the rest of the baseline landscape so the E9 comparison can run at
thousand-node scale.  Each kernel executes a whole sweep of trials on
``(B, n)`` boolean planes and reports the committee engine's result shapes,
and each one is cross-validated against the object simulator — bit-identical
where the per-trial randomness allows (Rabin's public dealer stream, the
deterministic phase-king and EIG protocols), statistically otherwise (Ben-Or
and sampling-majority consume per-node streams the kernels cannot replay).

:data:`BASELINE_KERNELS` is the capability registry :mod:`repro.engine`
merges with the committee engine's entries: it records, per protocol, the
kernel entry point, which object-simulator adversaries have a modelled fault
behaviour, and which optional knobs (``max_rounds``, protocol kwargs) the
kernel honours.  ``run_sweep``/``select_engine`` consult the merged table to
dispatch per ``(protocol, adversary)`` pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from repro.baselines.kernels.ben_or import BEN_OR_BEHAVIOURS, run_ben_or_trials
from repro.baselines.kernels.coin import CoinTrialsResult, run_coin_trials
from repro.baselines.kernels.common import VectorizedAggregate
from repro.baselines.kernels.eig import EIG_BEHAVIOURS, run_eig_trials
from repro.baselines.kernels.phase_king import (
    PHASE_KING_BEHAVIOURS,
    run_phase_king_trials,
)
from repro.baselines.kernels.rabin import RABIN_BEHAVIOURS, run_rabin_trials
from repro.baselines.kernels.sampling_majority import (
    SAMPLING_BEHAVIOURS,
    run_sampling_majority_trials,
)


@dataclass(frozen=True)
class KernelSpec:
    """Capability record for one protocol's batched kernel.

    Attributes:
        name: Kernel identifier shown in the engine-dispatch table.
        run_trials: Sweep entry point with the
            :func:`repro.simulator.vectorized.run_vectorized_trials`
            signature convention
            (``(n, t, *, adversary, inputs, trials, seed, ...)``).  Every
            kernel also honours ``trial_offset``: trial ``k`` of the call
            uses the Philox key ``(seed, trial_offset + k)``, so contiguous
            sub-batches concatenate bit-identically to one full batch (the
            sharded ``vectorized-mp`` executor's contract).
        behaviours: Object-simulator adversary name -> kernel fault behaviour.
            Only pairs listed here take the vectorised fast path.
        exact: Adversary names whose kernel runs are bit-identical to the
            object simulator (everything else is statistically validated).
        supports_params: Kernel accepts a committee-geometry override
            (``params=``) and an ``alpha`` kwarg.
        supports_max_rounds: Kernel honours an explicit round cap
            (timed-out trials are reported, not mis-simulated).
        protocol_kwargs: Protocol constructor kwargs the kernel reproduces;
            any other kwarg forces the object path.
    """

    name: str
    run_trials: Callable[..., VectorizedAggregate]
    behaviours: Mapping[str, str]
    exact: frozenset[str] = frozenset()
    supports_params: bool = False
    supports_max_rounds: bool = False
    protocol_kwargs: frozenset[str] = frozenset()


def _mapping(names: tuple[str, ...]) -> dict[str, str]:
    """Object adversary name -> behaviour, with identity aliases.

    ``null`` maps to the failure-free ``none`` behaviour; the kernel-side
    behaviour names themselves are accepted as aliases so callers migrating
    from direct kernel calls need not rename.
    """
    table = {behaviour: behaviour for behaviour in names}
    if "none" in names:
        table["null"] = "none"
    if "straddle" in names:
        table["coin-attack"] = "straddle"
    return table


#: protocol name -> baseline kernel capability record.  The committee-family
#: protocols are registered by :mod:`repro.engine` itself (their kernel is
#: the committee engine).
BASELINE_KERNELS: dict[str, KernelSpec] = {
    "rabin": KernelSpec(
        name="dealer-coin",
        run_trials=run_rabin_trials,
        behaviours=_mapping(RABIN_BEHAVIOURS),
        exact=frozenset({"null", "none", "silent"}),
        protocol_kwargs=frozenset({"phases_factor"}),
    ),
    "ben-or": KernelSpec(
        name="private-coin",
        run_trials=run_ben_or_trials,
        behaviours=_mapping(BEN_OR_BEHAVIOURS),
        supports_max_rounds=True,
        protocol_kwargs=frozenset({"phases_factor"}),
    ),
    "phase-king": KernelSpec(
        name="phase-king",
        run_trials=run_phase_king_trials,
        behaviours=_mapping(PHASE_KING_BEHAVIOURS),
        exact=frozenset({"null", "none", "silent", "static"}),
    ),
    "eig": KernelSpec(
        name="eig-tree",
        run_trials=run_eig_trials,
        behaviours=_mapping(EIG_BEHAVIOURS),
        exact=frozenset({"null", "none", "silent", "static"}),
    ),
    "sampling-majority": KernelSpec(
        name="sampling-majority",
        run_trials=run_sampling_majority_trials,
        behaviours=_mapping(SAMPLING_BEHAVIOURS),
        protocol_kwargs=frozenset({"iterations_factor", "sample_size"}),
    ),
}

__all__ = [
    "BASELINE_KERNELS",
    "CoinTrialsResult",
    "KernelSpec",
    "run_ben_or_trials",
    "run_coin_trials",
    "run_eig_trials",
    "run_phase_king_trials",
    "run_rabin_trials",
    "run_sampling_majority_trials",
]
