"""The batched adversary-kernel protocol.

The committee engine's original fast paths assumed either that every honest
node sees the *same* announcement multiset per round (the aggregate-counter
behaviours: ``none``/``straddle``/``silent``/``crash``) or that the
per-recipient differences are pure i.i.d. noise (``random-noise``).  The
remaining adversary strategies — the static equivocator, the adaptive
vote-splitting equivocator and the non-rushing committee-targeting attack —
fit neither mould: they send *different, deliberately chosen* announcements to
different recipients and corrupt adaptively against per-trial budgets.

An :class:`AdversaryKernel` expresses such a strategy as operations on
``(B, n)`` planes.  The engine
(:meth:`repro.simulator.vectorized.VectorizedAgreementSimulator.run_batch`)
drives one kernel instance through four hooks per batch:

``setup``
    Before round 1 of phase 1: spend any up-front corruptions (static
    strategies burn their whole budget here).

``round1``
    Rushing view of the round-1 broadcast tallies.  The kernel may corrupt
    (mutating the context planes in place) and returns the *additive*
    per-recipient announcement planes — how many extra ``1``/``0``
    round-1 values each recipient receives from corrupted senders.

``pre_coin``
    Between the two rounds, *before* the committee's coin shares are drawn.
    This is the only hook a non-rushing adversary may corrupt committee
    members in: it models corrupting the upcoming committee without having
    seen its flips (the corrupted members' shares are discarded exactly as
    the object scheduler discards a freshly corrupted node's honest
    messages).

``round2``
    Rushing view of the round-2 ``decided`` tallies and the honest committee
    share sum.  Returns additive per-recipient ``decided``-record planes and
    a per-recipient coin-share adjustment plane.

Additive planes are broadcastable against ``(B, n)`` — a uniform strategy
returns ``(B, 1)`` columns, a two-group equivocator returns full ``(B, n)``
planes — so the engine's threshold logic is written once, in plane form, and
never needs to know which strategy it is executing.  Kernels must account
their own adversary message traffic by adding to ``ctx.messages``.

Every kernel draws nothing from the per-trial Philox generators: the three
strategies modelled so far are deterministic given the honest randomness
(targets are picked lowest-id-first, exactly like
:meth:`repro.adversary.adaptive.AdaptiveAdversary.pick_targets`), so the
honest trial streams stay bit-compatible with the engine's other paths.
"""

from __future__ import annotations

from abc import ABC
from dataclasses import dataclass, field

import numpy as np

from repro.core.parameters import ProtocolParameters

#: An additive per-recipient count: anything broadcastable to ``(B, n)``.
#: ``0`` (the default) means "no adversary contribution".
CountPlane = int | np.ndarray


@dataclass
class KernelContext:
    """The engine state a kernel hook may read — and, for corruption, mutate.

    The boolean planes are *views into the live engine state*: a kernel
    corrupts node ``v`` of trial ``b`` by setting ``corrupted[b, v] = True``
    and ``active[b, v] = False`` and decrementing ``budget[b]`` — the same
    three-way bookkeeping the engine's built-in straddle uses.  Everything
    else must be treated as read-only.

    Attributes:
        n / t: Network size and corruption budget of the configuration.
        params: Committee geometry (size, count, phase schedule).
        phase: Current 1-based phase.
        committee_start / committee_stop: Id slice ``[start, stop)`` of the
            phase's designated committee.
        value / decided / active / corrupted / can_update: ``(B, n)`` planes;
            ``active`` is honest-and-not-terminated, ``can_update`` is False
            once a node is flushing.
        budget: ``(B,)`` remaining corruptions per trial.
        messages: ``(B,)`` running message counters (kernels add their own
            adversary traffic here).
        running: ``(B,)`` trials still executing; hooks must not touch
            finished rows.
    """

    n: int
    t: int
    params: ProtocolParameters
    phase: int
    committee_start: int
    committee_stop: int
    value: np.ndarray
    decided: np.ndarray
    active: np.ndarray
    corrupted: np.ndarray
    can_update: np.ndarray
    budget: np.ndarray
    messages: np.ndarray
    running: np.ndarray

    @property
    def committee_mask(self) -> np.ndarray:
        """``(n,)`` membership mask of the phase's designated committee."""
        mask = np.zeros(self.n, dtype=bool)
        mask[self.committee_start : self.committee_stop] = True
        return mask

    def corrupt(self, new_corrupt: np.ndarray) -> None:
        """Corrupt the ``(B, n)`` mask of nodes, with budget bookkeeping.

        ``new_corrupt`` must select currently-honest nodes only and respect
        each row's remaining budget (kernels enforce this by construction:
        targets are drawn from ``active`` and capped at ``budget``).
        """
        self.corrupted |= new_corrupt
        self.active &= ~new_corrupt
        self.budget -= np.count_nonzero(new_corrupt, axis=1)


@dataclass
class Round1Effect:
    """Additive round-1 announcement planes from the corrupted senders."""

    ones: CountPlane = 0
    zeros: CountPlane = 0


@dataclass
class Round2Effect:
    """Additive round-2 record / coin-share planes from the corrupted senders."""

    decided_one: CountPlane = 0
    decided_zero: CountPlane = 0
    shares: CountPlane = 0


@dataclass
class AdversaryKernel(ABC):
    """Base class for batched adversary strategies on ``(B, n)`` planes.

    Concrete kernels override the hooks they need; the defaults model a
    passive adversary.  One kernel instance serves one :meth:`run_batch`
    call, so kernels may keep per-batch state across phases (none of the
    current strategies need any — their state is fully captured by the
    ``corrupted``/``budget`` planes).
    """

    n: int
    t: int
    params: ProtocolParameters

    #: Mirrors :attr:`repro.adversary.base.Adversary.rushing`; non-rushing
    #: kernels corrupt in :meth:`pre_coin` and never read fresh shares.
    rushing: bool = field(default=True, init=False)

    def setup(self, ctx: KernelContext) -> None:
        """Spend up-front corruptions before round 1 of phase 1."""

    def round1(self, ctx: KernelContext, ones: np.ndarray, zeros: np.ndarray) -> Round1Effect:
        """React to the round-1 broadcast; may corrupt adaptively.

        Args:
            ones / zeros: ``(B,)`` honest per-value tallies of the round's
                broadcast *before* any corruption this hook performs (the
                rushing view — a node corrupted now has its honest broadcast
                discarded by the engine afterwards).
        """
        return Round1Effect()

    def pre_coin(self, ctx: KernelContext) -> None:
        """Corrupt committee members *before* their coin flips are drawn."""

    def round2(
        self,
        ctx: KernelContext,
        decided_one: np.ndarray,
        decided_zero: np.ndarray,
        share_sum: np.ndarray,
    ) -> Round2Effect:
        """React to the round-2 broadcast (rushing view of tallies and coin).

        Args:
            decided_one / decided_zero: ``(B,)`` honest ``decided`` record
                tallies per value.
            share_sum: ``(B,)`` sum of the honest committee members' fresh
                coin shares (only meaningful to rushing kernels).
        """
        return Round2Effect()
