"""Empirical statistics used to compare measurements against analytic curves.

Kept dependency-light: plain normal-approximation confidence intervals and a
least-squares slope on log–log data are all the experiments need (the paper
makes asymptotic, not distributional, claims).
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class RateEstimate:
    """A Bernoulli rate with a Wilson confidence interval."""

    successes: int
    trials: int
    rate: float
    low: float
    high: float

    def contains(self, value: float) -> bool:
        """True when ``value`` lies inside the confidence interval."""
        return self.low <= value <= self.high

    @property
    def width(self) -> float:
        """Full width of the confidence interval (the precision measure the
        adaptive executor targets)."""
        return self.high - self.low


def success_rate(successes: int, trials: int, *, z: float = 1.96) -> RateEstimate:
    """Wilson score interval for a Bernoulli success rate.

    Args:
        successes: Number of successful trials.
        trials: Total number of trials (must be positive).
        z: Normal quantile (1.96 = 95% confidence).
    """
    if trials <= 0:
        raise ValueError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must lie in [0, {trials}], got {successes}")
    p_hat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p_hat + z * z / (2 * trials)) / denom
    margin = (z / denom) * math.sqrt(p_hat * (1 - p_hat) / trials + z * z / (4 * trials * trials))
    return RateEstimate(
        successes=successes,
        trials=trials,
        rate=p_hat,
        low=max(0.0, centre - margin),
        high=min(1.0, centre + margin),
    )


def mean_confidence_interval(
    values: Sequence[float], *, z: float = 1.96
) -> tuple[float, float, float]:
    """Mean with a normal-approximation confidence interval.

    Returns:
        ``(mean, low, high)``.  With fewer than two values the interval
        degenerates to the single value.
    """
    if not values:
        raise ValueError("values must be non-empty")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return mean, mean, mean
    stderr = statistics.stdev(values) / math.sqrt(len(values))
    return mean, mean - z * stderr, mean + z * stderr


def relative_ci_width(values: Sequence[float], *, z: float = 1.96) -> float:
    """Full CI width of the mean, relative to the mean's magnitude.

    The scale-free precision measure the adaptive executor applies to round
    counts: ``(high - low) / max(|mean|, 1)`` from
    :func:`mean_confidence_interval`, so a target of ``0.1`` reads as "the
    mean is pinned to within ±5%".  A single value (or a constant sample)
    has zero width — deterministic round schedules converge immediately.
    """
    mean, low, high = mean_confidence_interval(values, z=z)
    return (high - low) / max(abs(mean), 1.0)


def trials_for_rate_width(rate: float, width: float, *, z: float = 1.96) -> int:
    """Trials needed for a Wilson interval of ``width`` at a true ``rate``.

    A normal-approximation planning bound (used to size adaptive batches and
    document expected costs, never to decide convergence — the executor
    always measures the realised interval): the Wilson width is approximately
    ``2 z sqrt(p(1-p)/n)`` away from the boundaries and ``z^2 / (n + z^2)``
    at them, so the max of the two solved for ``n`` covers both regimes.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"rate must lie in [0, 1], got {rate}")
    if not 0.0 < width < 1.0:
        raise ValueError(f"width must lie in (0, 1), got {width}")
    wald = (2.0 * z / width) ** 2 * rate * (1.0 - rate)
    boundary = z * z * (1.0 - width) / width
    return max(1, math.ceil(max(wald, boundary)))


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Used to check growth exponents: measured rounds of Algorithm 3 against
    ``t`` (expected slope ~2 in the quadratic regime) and of Chor–Coan
    (expected slope ~1).

    Raises:
        ValueError: On mismatched lengths, fewer than two points, or
            non-positive coordinates (which have no logarithm).
    """
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit a slope")
    if any(x <= 0 for x in xs) or any(y <= 0 for y in ys):
        raise ValueError("log-log fit requires strictly positive coordinates")
    log_x = [math.log(x) for x in xs]
    log_y = [math.log(y) for y in ys]
    mean_x = statistics.fmean(log_x)
    mean_y = statistics.fmean(log_y)
    sxx = sum((x - mean_x) ** 2 for x in log_x)
    if sxx == 0:
        raise ValueError("xs are all identical; slope is undefined")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(log_x, log_y))
    return sxy / sxx


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (used for speedup ratios across a sweep)."""
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(statistics.fmean(math.log(v) for v in values))
