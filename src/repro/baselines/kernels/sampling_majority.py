"""Batched kernel for the sampling-majority convergence dynamic.

Each iteration of the Augustine–Pandurangan–Robinson process has every node
sample the values of ``sample_size`` uniformly random nodes (two rounds:
requests, then replies) and replace its own value by the majority of its value
plus the samples it received.  The kernel runs all trials at once: one
``(n, sample_size)`` peer draw per trial per iteration, a batched gather of
the sampled values, and a vectorised majority update.

Under the ``silent`` behaviour the corrupted nodes neither request nor reply,
so a sample that lands on a corrupted peer simply contributes nothing to the
voter's majority — exactly the object semantics of
:class:`repro.baselines.sampling_majority.SamplingMajorityNode` under
:class:`~repro.adversary.strategies.silence.SilentAdversary`.  The object
simulator draws each node's samples from its own Philox stream, so the
cross-validation is statistical (agreement rate, message volume), while the
round count ``2 * ceil(iterations_factor * log2(n)^2)`` is exact.
"""

from __future__ import annotations

import math

import numpy as np

from repro.baselines.kernels.common import (
    PAYLOAD_BITS,
    VectorizedAggregate,
    aggregate,
    batch_setup,
    corrupted_columns,
    finalize_planes,
)
from repro.core.parameters import validate_n_t
from repro.exceptions import ConfigurationError

#: Fault behaviours this kernel models.
SAMPLING_BEHAVIOURS = ("none", "silent")

#: CONGEST payload sizes (bits), derived from repro.simulator.messages.
_REQUEST_BITS = PAYLOAD_BITS["SampleRequest"]
_REPLY_BITS = PAYLOAD_BITS["SampleReply"]


def run_sampling_majority_trials(
    n: int,
    t: int,
    *,
    adversary: str = "none",
    inputs: str = "split",
    trials: int = 10,
    seed: int = 0,
    iterations_factor: float = 2.0,
    sample_size: int = 2,
    trial_offset: int = 0,
) -> VectorizedAggregate:
    """Run ``trials`` batched executions of the sampling-majority process."""
    validate_n_t(n, t)
    if adversary not in SAMPLING_BEHAVIOURS:
        raise ConfigurationError(
            f"sampling-majority kernel behaviour must be one of {SAMPLING_BEHAVIOURS}, "
            f"got {adversary!r}"
        )
    input_rows, rngs = batch_setup(n, inputs, trials, seed, trial_offset)
    batch = input_rows.shape[0]
    log_n = max(1.0, math.log2(max(2, n)))
    num_iterations = max(1, math.ceil(iterations_factor * log_n * log_n))
    sample_size = max(1, sample_size)

    corrupted_cols = corrupted_columns(n, t, adversary)
    honest_cols = ~corrupted_cols
    n_honest = int(honest_cols.sum())

    value = input_rows.astype(bool).copy()
    corrupted = np.tile(corrupted_cols, (batch, 1))
    messages = np.zeros(batch, dtype=np.int64)
    bits = np.zeros(batch, dtype=np.int64)

    for _ in range(num_iterations):
        peers = np.stack(
            [rngs[b].integers(0, n, size=(n, sample_size)) for b in range(batch)]
        )
        peer_honest = honest_cols[peers]
        sampled = (
            np.take_along_axis(value, peers.reshape(batch, n * sample_size), axis=1)
            .reshape(batch, n, sample_size)
        )
        ones = value.astype(np.int64) + (sampled & peer_honest).sum(axis=2)
        totals = 1 + peer_honest.sum(axis=2)
        new_value = 2 * ones > totals
        value ^= (value ^ new_value) & honest_cols[None, :]

        # Requests from every honest node; a reply per request that landed on
        # an honest peer (honest nodes answer everyone who sampled them).
        replies = peer_honest[:, honest_cols, :].sum(axis=(1, 2))
        requests = n_honest * sample_size
        messages += requests + replies
        bits += requests * _REQUEST_BITS + replies * _REPLY_BITS

    results = finalize_planes(
        n,
        t,
        input_rows,
        output=value,
        corrupted=corrupted,
        rounds=np.full(batch, 2 * num_iterations, dtype=np.int64),
        phases=np.full(batch, num_iterations, dtype=np.int64),
        messages=messages,
        bits=bits,
    )
    return aggregate(n, t, "sampling-majority", adversary, results)
