"""Tests for the selectable plane backends (:mod:`repro.simulator.planes`).

Four acceptance surfaces:

* the **registry**: built-in backends present, explicit > env > default
  resolution, unknown names and duplicate registrations rejected;
* **op equivalence**: every registered backend replays a scripted sequence
  covering the whole :class:`~repro.simulator.planes.base.Plane` contract
  against the numpy-bool reference, over ragged widths (1, 63, 64, 65, ...),
  all-True/all-False planes, every mask shape the engine produces, row
  compaction down to the empty batch, and the ``bools()`` /
  ``mark_bools_dirty`` hook boundary;
* **bit identity end to end**: full ``run_sweep`` runs are field-for-field
  identical under every backend (clique, masked topology, lossy), which is
  what licenses the sweep store to ignore the backend in its cache keys —
  asserted directly by a cross-backend cache-hit test;
* the **CLI seam**: ``repro trials --backend packed`` round-trips.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.engine import run_sweep
from repro.exceptions import ConfigurationError
from repro.simulator import planes as planes_module
from repro.simulator.planes import (
    DEFAULT_BACKEND,
    ENV_VAR,
    PackedPlane,
    PlaneBackend,
    available_backends,
    get_backend,
    pack_bools,
    register_backend,
    resolve_backend,
    unpack_words,
)
from repro.simulator.vectorized import run_vectorized_trials
from repro.sweeps import ResultsStore, SweepSpec, run_spec
from repro.topology import build_topology

#: Widths straddling the packed backend's 64-bit word boundary.
WIDTHS = (1, 5, 63, 64, 65, 100, 128)
BATCH = 7

#: Every backend the registry knows at collection time is held to the same
#: contract (numpy itself runs as the trivial case).
BACKENDS = available_backends()


class TestRegistry:
    def test_builtin_backends_are_registered(self):
        names = available_backends()
        assert "numpy" in names
        assert "packed" in names
        assert DEFAULT_BACKEND == "numpy"

    def test_get_backend_rejects_unknown_names(self):
        with pytest.raises(ConfigurationError, match="unknown plane backend"):
            get_backend("warp")

    def test_resolution_order_explicit_env_default(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert resolve_backend().name == "numpy"
        monkeypatch.setenv(ENV_VAR, "packed")
        assert resolve_backend().name == "packed"
        # Explicit choice outranks the environment.
        assert resolve_backend("numpy").name == "numpy"
        # A backend instance passes straight through.
        instance = get_backend("packed")
        assert resolve_backend(instance) is instance
        monkeypatch.setenv(ENV_VAR, "warp")
        with pytest.raises(ConfigurationError, match="unknown plane backend"):
            resolve_backend()
        # Blank env falls back to the default rather than erroring.
        monkeypatch.setenv(ENV_VAR, "  ")
        assert resolve_backend().name == DEFAULT_BACKEND

    def test_duplicate_registration_requires_replace(self):
        class Dummy(PlaneBackend):
            name = "test-dummy"

            def from_bools(self, array):  # pragma: no cover - never called
                raise NotImplementedError

        try:
            register_backend(Dummy())
            assert "test-dummy" in available_backends()
            with pytest.raises(ConfigurationError, match="already registered"):
                register_backend(Dummy())
            register_backend(Dummy(), replace=True)
        finally:
            planes_module._REGISTRY.pop("test-dummy", None)


class TestPacking:
    @pytest.mark.parametrize("n", WIDTHS)
    def test_pack_unpack_round_trip(self, n):
        rng = np.random.default_rng(n)
        array = rng.random((BATCH, n)) < 0.5
        words = pack_bools(array, n)
        assert words.dtype == np.uint64
        assert words.shape == (BATCH, max(1, -(-n // 64)))
        np.testing.assert_array_equal(unpack_words(words, n), array)

    @pytest.mark.parametrize("n", WIDTHS)
    def test_tail_bits_are_zero(self, n):
        words = pack_bools(np.ones((BATCH, n), dtype=bool), n)
        counts = np.bitwise_count(words).sum(axis=1)
        np.testing.assert_array_equal(counts, np.full(BATCH, n))

    def test_packed_popcount_never_over_counts_after_broadcast_masks(self):
        # (B, 1) masks broadcast as all-ones words whose tail bits must not
        # leak into stored planes.
        n = 70
        plane = PackedPlane(n, bools=np.ones((BATCH, n), dtype=bool))
        plane.set_where(plane.and_mask(np.ones((BATCH, 1), dtype=bool)))
        np.testing.assert_array_equal(plane.popcount(), np.full(BATCH, n))


def _fill(kind, n, seed):
    rng = np.random.default_rng(seed)
    if kind == "random":
        return rng.random((BATCH, n)) < 0.5
    if kind == "true":
        return np.ones((BATCH, n), dtype=bool)
    return np.zeros((BATCH, n), dtype=bool)


class TestOpEquivalence:
    """Replay one scripted op sequence on a backend and the reference."""

    @pytest.mark.parametrize("backend_name", BACKENDS)
    @pytest.mark.parametrize("n", WIDTHS)
    @pytest.mark.parametrize("kind", ("random", "true", "false"))
    def test_full_contract_matches_reference(self, backend_name, n, kind):
        reference = get_backend("numpy")
        backend = get_backend(backend_name)
        base = _fill(kind, n, seed=3 * n)
        other_arr = _fill("random", n, seed=3 * n + 1)
        third_arr = _fill("random", n, seed=3 * n + 2)

        ref = reference.from_bools(base.copy())
        ours = backend.from_bools(base.copy())
        ref_other = reference.from_bools(other_arr.copy())
        our_other = backend.from_bools(other_arr.copy())
        ref_third = reference.from_bools(third_arr.copy())
        our_third = backend.from_bools(third_arr.copy())

        def check(label):
            np.testing.assert_array_equal(
                ours.bools(), ref.bools(),
                err_msg=f"{backend_name}: {label} diverged (n={n}, {kind})",
            )

        # Exact tallies.
        np.testing.assert_array_equal(ours.popcount(), ref.popcount())
        np.testing.assert_array_equal(
            ours.popcount_and(our_other), ref.popcount_and(ref_other)
        )
        np.testing.assert_array_equal(
            ours.popcount_and3(our_other, our_third),
            ref.popcount_and3(ref_other, ref_third),
        )
        assert ours.popcount().dtype == np.int64

        # Temporaries.
        np.testing.assert_array_equal(
            ours.and_plane(our_other).bools(), ref.and_plane(ref_other).bools()
        )
        rng = np.random.default_rng(99)
        masks = [
            np.ones((BATCH, 1), dtype=bool),
            (rng.random((BATCH, 1)) < 0.5),
            (rng.random((BATCH, n)) < 0.5),
            (rng.random(n) < 0.5),  # 1-D row mask (masked-topology shapes)
            np.True_,  # 0-d
            np.False_,
        ]
        for i, mask in enumerate(masks):
            np.testing.assert_array_equal(
                ours.and_mask(mask).bools(),
                ref.and_mask(mask).bools(),
                err_msg=f"{backend_name}: and_mask[{i}] diverged (n={n}, {kind})",
            )

        # In-place updates, interleaved so staleness bugs would compound.
        for i, mask in enumerate(masks):
            ours.blend_mask(mask, our_other)
            ref.blend_mask(mask, ref_other)
            check(f"blend_mask[{i}]")
        ours.blend_plane(our_other, our_third)
        ref.blend_plane(ref_other, ref_third)
        check("blend_plane")
        ours.set_where(our_other)
        ref.set_where(ref_other)
        check("set_where")
        ours.clear_where(our_third)
        ref.clear_where(ref_third)
        check("clear_where")
        # The engine only XORs subsets, so build one.
        ours.xor_where(ours.and_plane(our_other))
        ref.xor_where(ref.and_plane(ref_other))
        check("xor_where")

        # Hook boundary: mutate the bool view in place, declare it dirty,
        # and require the next word op to see the mutation.
        view = ours.bools()
        view[:, 0] = ~view[:, 0]
        ours.mark_bools_dirty()
        ref_view = ref.bools()
        ref_view[:, 0] = ~ref_view[:, 0]
        ref.mark_bools_dirty()
        np.testing.assert_array_equal(ours.popcount(), ref.popcount())
        ours.set_where(our_other)
        ref.set_where(ref_other)
        check("post-dirty set_where")

        # Compaction, down to the empty batch.
        for keep in (np.array([0, 2, 5]), np.array([], dtype=np.intp)):
            taken, ref_taken = ours.take(keep), ref.take(keep)
            np.testing.assert_array_equal(taken.bools(), ref_taken.bools())
            np.testing.assert_array_equal(taken.popcount(), ref_taken.popcount())

        ours.fill_false()
        ref.fill_false()
        check("fill_false")


#: Configurations spanning both engine schedules (las-vegas and bounded),
#: every hook the kernels exercise (static and adaptive corruption, round-1
#: planes, rushing round-2 share attacks), and both baseline wrappers.
SWEEP_CASES = (
    ("committee-ba-las-vegas", "straddle"),
    ("committee-ba", "equivocate"),
    ("committee-ba", "coin-attack"),
    ("rabin", "random-noise"),
    ("ben-or", "crash"),
)


class TestEndToEndBitIdentity:
    @pytest.mark.parametrize("backend_name", [b for b in BACKENDS if b != "numpy"])
    @pytest.mark.parametrize(("protocol", "adversary"), SWEEP_CASES)
    def test_run_sweep_is_bit_identical(self, backend_name, protocol, adversary):
        kwargs = dict(
            protocol=protocol, adversary=adversary, inputs="split",
            trials=6, base_seed=11, engine="vectorized", allow_timeout=True,
        )
        reference = run_sweep(40, 5, backend="numpy", **kwargs)
        ours = run_sweep(40, 5, backend=backend_name, **kwargs)
        assert ours.trials == reference.trials

    def test_env_var_selects_the_backend_at_run_time(self, monkeypatch):
        kwargs = dict(
            protocol="committee-ba-las-vegas", adversary="straddle",
            inputs="split", trials=4, seed=7,
        )
        monkeypatch.delenv(ENV_VAR, raising=False)
        reference = run_vectorized_trials(40, 5, **kwargs)
        monkeypatch.setenv(ENV_VAR, "packed")
        packed = run_vectorized_trials(40, 5, **kwargs)
        assert packed.results == reference.results

    def test_masked_and_lossy_runs_honour_the_packed_request(self):
        # Off-clique and lossy runs route their tallies through the
        # backend-aware channels of repro.topology.counting: a packed request
        # runs AND+popcount word tallies end to end and must be bit-identical
        # to the numpy reference (tests/test_masked_backends.py covers the
        # full generator x loss grid; this is the smoke pin).
        ring = build_topology("ring", 24)
        for extra in ({"adjacency": ring}, {"loss": 0.02}):
            kwargs = dict(
                protocol="committee-ba", adversary="static", inputs="split",
                trials=4, seed=9, **extra,
            )
            reference = run_vectorized_trials(24, 2, **kwargs)
            packed = run_vectorized_trials(24, 2, backend="packed", **kwargs)
            assert packed.results == reference.results


class TestSweepStoreCaching:
    def test_backend_choice_never_splits_the_cache(self, tmp_path):
        spec = SweepSpec(
            name="backend-cache",
            protocols=("committee-ba",),
            adversaries=("null", "static"),
            n_values=(17,),
            t_specs=("quarter",),
            trials=2,
            seed_policy="by-point",
            base_seed=50,
        )
        store = ResultsStore(tmp_path / "store")
        first = run_spec(spec, store=store, backend="numpy")
        assert first.computed == first.total
        # The same points under the packed backend are pure cache hits:
        # point_key has no backend component because backends are
        # bit-identical by contract.
        second = run_spec(spec, store=store, backend="packed")
        assert second.computed == 0
        assert second.cached == second.total


class TestCli:
    def test_trials_backend_flag_round_trips(self, capsys):
        code = main(["trials", "--n", "16", "--t", "3", "--trials", "3",
                     "--seed", "5"])
        assert code == 0
        reference = capsys.readouterr().out
        code = main(["trials", "--n", "16", "--t", "3", "--trials", "3",
                     "--seed", "5", "--backend", "packed"])
        assert code == 0
        assert capsys.readouterr().out == reference

    def test_trials_backend_flag_rejects_unknown_names(self, capsys):
        with pytest.raises(SystemExit):
            main(["trials", "--n", "16", "--t", "3", "--backend", "warp"])

    def test_engines_command_lists_backends(self, capsys):
        assert main(["engines"]) == 0
        output = capsys.readouterr().out
        assert "plane backends available:" in output
        assert "numpy" in output
        assert "packed" in output
