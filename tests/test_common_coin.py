"""Tests for the common coin protocols (Algorithm 1 and Algorithm 2).

Beyond unit tests of the share-combination rule, these tests check the
substance of Theorem 3 and Corollary 1 empirically: under the adaptive rushing
straddle attack with at most ``sqrt(n)/2`` corruptions, the fraction of runs
in which all honest nodes output the same bit is at least the paper's 1/12
bound (in fact far higher), and both outcomes occur.
"""

from __future__ import annotations

import pytest

from repro.adversary.base import NullAdversary
from repro.adversary.strategies.coin_attack import CoinAttackAdversary
from repro.core.common_coin import (
    CoinRunOutcome,
    coin_from_shares,
    run_common_coin,
    shares_from_inbox,
)
from repro.exceptions import ConfigurationError
from repro.simulator.messages import CoinShare, Message


class TestCoinFromShares:
    def test_positive_sum_gives_one(self):
        assert coin_from_shares({0: 1, 1: 1, 2: -1}) == 1

    def test_negative_sum_gives_zero(self):
        assert coin_from_shares({0: -1, 1: -1, 2: 1}) == 0

    def test_tie_counts_as_one(self):
        assert coin_from_shares({0: 1, 1: -1}) == 1
        assert coin_from_shares({}) == 1

    def test_designated_filter_ignores_outsiders(self):
        shares = {0: -1, 1: -1, 2: 1, 3: 1, 4: 1}
        assert coin_from_shares(shares, designated={0, 1}) == 0
        assert coin_from_shares(shares, designated={2, 3, 4}) == 1


class TestSharesFromInbox:
    def test_takes_first_share_per_sender_and_filters_malformed(self):
        inbox = [
            Message(0, 9, CoinShare(phase=1, share=1)),
            Message(0, 9, CoinShare(phase=1, share=-1)),  # duplicate sender: ignored
            Message(1, 9, CoinShare(phase=1, share=5)),  # malformed: ignored
            Message(2, 9, CoinShare(phase=2, share=-1)),  # wrong phase: ignored
            Message(3, 9, CoinShare(phase=1, share=-1)),
        ]
        assert shares_from_inbox(inbox, phase=1) == {0: 1, 3: -1}

    def test_phase_none_accepts_all_phases(self):
        inbox = [Message(0, 9, CoinShare(phase=4, share=1))]
        assert shares_from_inbox(inbox) == {0: 1}


class TestAlgorithm1:
    def test_no_adversary_coin_is_always_common(self):
        for seed in range(10):
            outcome = run_common_coin(21, NullAdversary(), seed=seed)
            assert outcome.common
            assert outcome.value in (0, 1)

    def test_both_outcomes_occur_without_adversary(self):
        values = {run_common_coin(15, NullAdversary(), seed=seed).value for seed in range(30)}
        assert values == {0, 1}

    def test_theorem3_success_probability_under_straddle_attack(self):
        # n = 36, budget = sqrt(n)/2 = 3 adaptive rushing corruptions.
        n, budget, trials = 36, 3, 120
        common = 0
        values = set()
        for seed in range(trials):
            outcome = run_common_coin(n, CoinAttackAdversary(budget), seed=seed)
            if outcome.common:
                common += 1
                values.add(outcome.value)
        # Theorem 3 guarantees a constant (>= 1/12) success probability; the
        # empirical rate under the straddle attack is far higher.
        assert common / trials >= 1 / 12
        # Definition 2(B): conditioned on success, both outcomes occur.
        assert values == {0, 1}

    def test_overwhelming_adversary_can_break_the_coin(self):
        # With t >> sqrt(n) the straddle attack succeeds essentially always,
        # confirming the attack (and the tightness of the sqrt(n) condition).
        n, budget, trials = 25, 12, 40
        broken = sum(
            not run_common_coin(n, CoinAttackAdversary(budget), seed=seed).common
            for seed in range(trials)
        )
        assert broken / trials > 0.5


class TestAlgorithm2:
    def test_designated_coin_without_adversary(self):
        designated = set(range(5))
        outcome = run_common_coin(20, NullAdversary(), seed=3, designated=designated)
        assert outcome.common

    def test_shares_from_non_designated_nodes_are_ignored(self):
        # An adversary that corrupts only nodes *outside* the designated set
        # and floods contradictory shares cannot affect the coin at all.
        from repro.adversary.base import Adversary, AdversaryAction

        class OutsiderFlooder(Adversary):
            strategy_name = "outsider-flooder"

            def act(self, view):
                new = {0, 1} - view.corrupted
                messages = []
                for sender in (0, 1):
                    for recipient in view.honest_ids():
                        share = 1 if recipient % 2 == 0 else -1
                        messages.append(Message(sender, recipient, CoinShare(phase=0, share=share)))
                return AdversaryAction(new_corruptions=new, messages=messages)

        designated = set(range(10, 20))
        for seed in range(8):
            outcome = run_common_coin(20, OutsiderFlooder(2), seed=seed, designated=designated)
            assert outcome.common

    def test_corollary1_success_rate_with_byzantine_inside_committee(self):
        designated = set(range(16))
        trials, common = 60, 0
        for seed in range(trials):
            outcome = run_common_coin(
                64, CoinAttackAdversary(2), seed=seed, designated=designated
            )
            common += outcome.common
        assert common / trials >= 1 / 12

    def test_empty_designated_set_rejected(self):
        import numpy as np

        from repro.core.common_coin import DesignatedCoinFlipNode

        with pytest.raises(ConfigurationError):
            DesignatedCoinFlipNode(0, 4, 1, 0, np.random.default_rng(0), designated=[])
        with pytest.raises(ConfigurationError):
            DesignatedCoinFlipNode(0, 4, 1, 0, np.random.default_rng(0), designated=[99])


class TestOutcomeObject:
    def test_common_and_value_properties(self):
        same = CoinRunOutcome(outputs={0: 1, 1: 1}, corrupted=frozenset())
        split = CoinRunOutcome(outputs={0: 1, 1: 0}, corrupted=frozenset({5}))
        assert same.common and same.value == 1
        assert not split.common and split.value is None
